package nfa

import (
	"math/bits"
	"sync/atomic"
)

// stateSet is a bitset over machine state ids: state s lives at bit s&63 of
// word s>>6. Word-at-a-time union and emptiness are what let the subset
// construction and the reachability kernels run at memory speed; the earlier
// []bool representation walked one state per loop iteration.
type stateSet []uint64

// newStateSet returns an empty set with capacity for numStates states.
func newStateSet(numStates int) stateSet {
	return make(stateSet, (numStates+63)>>6)
}

func (s stateSet) add(i int)           { s[i>>6] |= 1 << (uint(i) & 63) }
func (s stateSet) contains(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

func (s stateSet) isEmpty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// unionWith ors t into s, reporting whether s gained any state. Both sets
// must have the same capacity.
func (s stateSet) unionWith(t stateSet) bool {
	changed := false
	for i, w := range t {
		if w&^s[i] != 0 {
			changed = true
			s[i] |= w
		}
	}
	return changed
}

// forEach calls fn with every member in ascending order.
func (s stateSet) forEach(fn func(state int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			fn(wi<<6 | b)
		}
	}
}

// appendKey appends a canonical byte encoding of the set (little-endian
// words) to dst. Equal sets of equal capacity encode identically, which is
// what the subset construction keys its dedup map by.
func (s stateSet) appendKey(dst []byte) []byte {
	for _, w := range s {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// ecloCache memoizes per-state ε-closures of an immutable machine. Entries
// fill lazily under the same atomic.Pointer discipline as NFA.canon:
// concurrent solves over a shared (interned) machine may race to compute a
// closure, but every racer computes the same value, so last-store-wins is
// sound. The cache is allocated once at Build time and shared by every
// zero-copy view of the machine, so a closure computed through one view is
// visible to all of them.
type ecloCache struct {
	sets []atomic.Pointer[stateSet]
}

func newEcloCache(numStates int) *ecloCache {
	return &ecloCache{sets: make([]atomic.Pointer[stateSet], numStates)}
}

// seamMemo memoizes the seam-free transition structure derived from a
// machine (see NFA.seamFree). Like ecloCache it is allocated at Build time
// and shared by views: the memoized machine's own start/final are
// irrelevant — Induce and DropSeams always re-aim it through a view.
type seamMemo struct {
	p atomic.Pointer[NFA]
}
