package nfa

import "dprle/internal/budget"

// Quotient constructions. These are not part of the paper's core algorithm,
// but they give an independent characterization of maximality (§3.1,
// condition 2): for a constraint A·v·B ⊆ C, the largest admissible language
// for v is ¬(A⁻¹·(¬C)·B⁻¹). The core package's maximality checker uses them
// to validate solver output without trusting the solver's own construction.

// LeftQuotient returns A⁻¹X = { w | ∃a ∈ L(a): aw ∈ L(x) }.
func LeftQuotient(a, x *NFA) *NFA {
	m, _ := LeftQuotientB(nil, a, x) // nil budget cannot fail (see budget.Budget)
	return m
}

// LeftQuotientB is LeftQuotient under a resource budget: the product-state
// exploration is accounted per visited pair.
func LeftQuotientB(bud *budget.Budget, a, x *NFA) (*NFA, error) {
	// A state q of x can begin the suffix iff some string of L(a) drives x
	// from its start to q. Compute the reachable product states of (a, x);
	// every x-state paired with a's final state is a valid entry point.
	entry, err := jointlyReachable(bud, a, x, true)
	if err != nil {
		return nil, err
	}
	bl := NewBuilder()
	s := bl.AddState()
	off := appendMachine(bl, x)
	for q, ok := range entry {
		if ok {
			bl.AddEps(s, off+q)
		}
	}
	return bl.Build(s, off+x.final).Trim(), nil
}

// RightQuotient returns XB⁻¹ = { w | ∃b ∈ L(b): wb ∈ L(x) }.
func RightQuotient(x, b *NFA) *NFA {
	m, _ := RightQuotientB(nil, x, b) // nil budget cannot fail (see budget.Budget)
	return m
}

// RightQuotientB is RightQuotient under a resource budget.
func RightQuotientB(bud *budget.Budget, x, b *NFA) (*NFA, error) {
	// Symmetric to LeftQuotient via reversal.
	lq, err := LeftQuotientB(bud, Reverse(b), Reverse(x))
	if err != nil {
		return nil, err
	}
	return Reverse(lq).Trim(), nil
}

// jointlyReachable explores the product of a and x from their joint start
// and returns, per x-state, whether the pair (a.final, xState) is reachable
// (requireAFinal=true) or whether any pair with that x-state is reachable.
// Visited product pairs are accounted against bud.
func jointlyReachable(bud *budget.Budget, a, x *NFA, requireAFinal bool) ([]bool, error) {
	type pair struct{ pa, px int }
	seen := map[pair]bool{}
	out := make([]bool, x.NumStates())
	var stack []pair
	push := func(p pair) {
		if !seen[p] {
			seen[p] = true
			stack = append(stack, p)
		}
	}
	push(pair{a.start, x.start})
	for len(stack) > 0 {
		if err := bud.AddStates(1, "nfa.quotient"); err != nil {
			return nil, err
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !requireAFinal || p.pa == a.final {
			out[p.px] = true
		}
		for _, ea := range a.eps[p.pa] {
			push(pair{ea.To, p.px})
		}
		for _, ex := range x.eps[p.px] {
			push(pair{p.pa, ex.To})
		}
		for _, ea := range a.edges[p.pa] {
			for _, ex := range x.edges[p.px] {
				if ea.Label.Intersects(ex.Label) {
					push(pair{ea.To, ex.To})
				}
			}
		}
	}
	return out, nil
}

// MaxMiddle returns the largest language M with L(a)·M·L(b) ⊆ L(c),
// namely ¬( L(a)⁻¹ · ¬L(c) · L(b)⁻¹ ). Pass Epsilon() for an absent side.
func MaxMiddle(a, b, c *NFA) *NFA {
	return MaxMiddleNot(a, b, Complement(c))
}

// MaxMiddleNot is MaxMiddle with the complement of c precomputed, letting
// callers that probe many (a, b) pairs against one constant amortize the
// determinization.
func MaxMiddleNot(a, b, notC *NFA) *NFA {
	m, _ := MaxMiddleNotB(nil, a, b, notC) // nil budget cannot fail (see budget.Budget)
	return m
}

// MaxMiddleNotB is MaxMiddleNot under a resource budget. The chain contains
// two quotient explorations and a complement (which determinizes), all of
// which are accounted.
func MaxMiddleNotB(bud *budget.Budget, a, b, notC *NFA) (*NFA, error) {
	lq, err := LeftQuotientB(bud, a, notC)
	if err != nil {
		return nil, err
	}
	rq, err := RightQuotientB(bud, lq, b)
	if err != nil {
		return nil, err
	}
	comp, err := ComplementB(bud, rq)
	if err != nil {
		return nil, err
	}
	return comp.Trim(), nil
}
