package nfa

import (
	"fmt"
	"strings"
)

// Dot renders the machine in Graphviz DOT format, useful for reproducing the
// intermediate-automata figures in the paper (Fig. 4 and Fig. 10). Seam
// ε-edges are drawn dashed and labelled with their tag, matching the paper's
// dashed-ε convention.
func (m *NFA) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	fmt.Fprintf(&b, "  _start [shape=point];\n  _start -> s%d;\n", m.start)
	fmt.Fprintf(&b, "  s%d [shape=doublecircle];\n", m.final)
	for s := 0; s < m.NumStates(); s++ {
		for _, e := range m.edges[s] {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", s, e.To, e.Label.String())
		}
		for _, e := range m.eps[s] {
			if e.Tag == NoTag {
				fmt.Fprintf(&b, "  s%d -> s%d [label=\"ε\"];\n", s, e.To)
			} else {
				fmt.Fprintf(&b, "  s%d -> s%d [label=\"ε/%d\", style=dashed];\n", s, e.To, e.Tag)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes machine size for the experiment harness.
type Stats struct {
	States    int
	CharEdges int
	EpsEdges  int
	SeamEdges int
}

// Stats returns the machine's size statistics.
func (m *NFA) Stats() Stats {
	st := Stats{States: m.NumStates()}
	for s := 0; s < m.NumStates(); s++ {
		st.CharEdges += len(m.edges[s])
		for _, e := range m.eps[s] {
			if e.Tag == NoTag {
				st.EpsEdges++
			} else {
				st.SeamEdges++
			}
		}
	}
	return st
}

// String renders a compact human-readable description of the machine.
func (m *NFA) String() string {
	st := m.Stats()
	return fmt.Sprintf("NFA{states: %d, edges: %d, ε: %d, seams: %d, start: %d, final: %d}",
		st.States, st.CharEdges, st.EpsEdges, st.SeamEdges, m.start, m.final)
}
