package nfa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	machines := []*NFA{
		Empty(),
		Epsilon(),
		Literal("hello"),
		Union(Star(Literal("ab")), Plus(Class(Range('0', '9')))),
		ConcatTagged(Literal("a"), Literal("b"), 7),
		AnyString(),
	}
	for i, m := range machines {
		back, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
		if !Equivalent(m, back) {
			t.Fatalf("machine %d: language changed in round trip", i)
		}
		if back.NumStates() != m.NumStates() || back.Start() != m.Start() || back.Final() != m.Final() {
			t.Fatalf("machine %d: structure changed", i)
		}
	}
}

func TestMarshalPreservesSeamTags(t *testing.T) {
	m := ConcatTagged(ConcatTagged(Literal("a"), Literal("b"), 3), Literal("c"), 9)
	back, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	tags := back.Tags()
	if len(tags) != 2 || tags[0] != 3 || tags[1] != 9 {
		t.Fatalf("tags = %v", tags)
	}
}

func TestMarshalFormatShape(t *testing.T) {
	m := Literal("a")
	text := m.Marshal()
	for _, want := range []string{"dprle-nfa 1\n", "states 2 start 0 final 1", "edge 0 1 97-97", "end\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"",
		"wrong-header\nstates 1 start 0 final 0\nend\n",
		"dprle-nfa 1\n", // missing decl
		"dprle-nfa 1\nstates 0 start 0 final 0\nend\n",        // zero states
		"dprle-nfa 1\nstates 2 start 0 final 5\nend\n",        // final OOR
		"dprle-nfa 1\nstates 2 start 0 final 1\n",             // missing end
		"dprle-nfa 1\nstates 2 start 0 final 1\nbogus\nend\n", // directive
		"dprle-nfa 1\nstates 2 start 0 final 1\nedge 0 9 97-97\nend\n",
		"dprle-nfa 1\nstates 2 start 0 final 1\nedge 0 1 97\nend\n",
		"dprle-nfa 1\nstates 2 start 0 final 1\nedge 0 1 300-400\nend\n",
		"dprle-nfa 1\nstates 2 start 0 final 1\neps 0 1 -4\nend\n",
		"dprle-nfa 1\nstates 2 start 0 final 1\neps 0 7\nend\n",
	}
	for _, src := range bad {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("Unmarshal(%q) should fail", src)
		}
	}
}

func TestUnmarshalSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
dprle-nfa 1

states 2 start 0 final 1
# another
edge 0 1 97-98,100-100

end
`
	m, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	mustAccept(t, m, "a", "b", "d")
	mustReject(t, m, "c", "")
}

func TestPropMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	f := func() bool {
		m := randMachine(r, 2)
		back, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		for _, w := range sampleStrings(r, 10) {
			if m.Accepts(w) != back.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
