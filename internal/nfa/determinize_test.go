package nfa

import "testing"

func TestDeterminizeAccepts(t *testing.T) {
	m := Union(Literal("ab"), Star(Literal("a")))
	d := Determinize(m)
	for _, w := range []string{"", "a", "aa", "ab", "aaa"} {
		if !d.Accepts(w) {
			t.Errorf("DFA should accept %q", w)
		}
	}
	for _, w := range []string{"b", "ba", "abb"} {
		if d.Accepts(w) {
			t.Errorf("DFA should reject %q", w)
		}
	}
}

func TestDeterminizeEmpty(t *testing.T) {
	d := Determinize(Empty())
	if !d.IsEmpty() {
		t.Fatal("DFA of empty language should be empty")
	}
	if d.Accepts("") || d.Accepts("a") {
		t.Fatal("empty DFA accepted something")
	}
}

func TestDFAComplement(t *testing.T) {
	m := Literal("ab")
	c := Determinize(m).Complement()
	if c.Accepts("ab") {
		t.Fatal("complement accepts member")
	}
	for _, w := range []string{"", "a", "b", "abc", "xyz"} {
		if !c.Accepts(w) {
			t.Errorf("complement should accept %q", w)
		}
	}
}

func TestComplementInvolution(t *testing.T) {
	m := Union(Literal("x"), Star(Literal("yz")))
	cc := Complement(Complement(m))
	if !Equivalent(m, cc) {
		t.Fatal("double complement should be identity on languages")
	}
}

func TestMinimizeReducesStates(t *testing.T) {
	// (a|b)(a|b) via a redundant construction.
	ab := Class(Range('a', 'b'))
	m := Union(Concat(Literal("a"), ab.Copy()), Concat(Literal("b"), ab.Copy()))
	min := Determinize(m).Minimize()
	// Minimal DFA for [ab][ab]: start, after-1, accept, dead = 4 states.
	if min.NumStates() != 4 {
		t.Fatalf("minimal DFA has %d states, want 4", min.NumStates())
	}
	for _, w := range []string{"aa", "ab", "ba", "bb"} {
		if !min.Accepts(w) {
			t.Errorf("minimized DFA should accept %q", w)
		}
	}
	if min.Accepts("a") || min.Accepts("aaa") {
		t.Fatal("minimized DFA over-accepts")
	}
}

func TestMinimizeEmptyAndSigmaStar(t *testing.T) {
	if n := Determinize(Empty()).Minimize().NumStates(); n != 1 {
		t.Fatalf("minimal empty DFA states = %d, want 1", n)
	}
	if n := Determinize(AnyString()).Minimize().NumStates(); n != 1 {
		t.Fatalf("minimal Σ* DFA states = %d, want 1", n)
	}
}

func TestDFAToNFARoundTrip(t *testing.T) {
	m := Union(Literal("foo"), Plus(Literal("ba")))
	back := Determinize(m).Minimize().ToNFA()
	if !Equivalent(m, back) {
		t.Fatal("DFA→NFA round trip changed the language")
	}
}

func TestComplementNFA(t *testing.T) {
	m := Plus(Class(Range('0', '9')))
	c := Complement(m)
	mustAccept(t, c, "", "a", "1a", "a1")
	mustReject(t, c, "1", "42", "00000")
}

func TestMinimizedHelper(t *testing.T) {
	m := UnionAll(Literal("aa"), Literal("aa"), Literal("aa"))
	min := Minimized(m)
	if !Equivalent(m, min) {
		t.Fatal("Minimized changed the language")
	}
	if min.NumStates() >= m.NumStates() {
		t.Fatalf("Minimized did not shrink: %d -> %d", m.NumStates(), min.NumStates())
	}
}

func TestSubset(t *testing.T) {
	digits := Plus(Class(Range('0', '9')))
	some := Literal("123")
	if !Subset(some, digits) {
		t.Fatal("123 ⊆ [0-9]+ should hold")
	}
	if Subset(digits, some) {
		t.Fatal("[0-9]+ ⊆ 123 should not hold")
	}
	if !Subset(Empty(), some) {
		t.Fatal("∅ is a subset of everything")
	}
	if !Subset(some, AnyString()) {
		t.Fatal("everything is a subset of Σ*")
	}
}

func TestEquivalent(t *testing.T) {
	a := Star(Union(Literal("a"), Literal("b")))
	b := Star(Class(Range('a', 'b')))
	if !Equivalent(a, b) {
		t.Fatal("(a|b)* should equal [ab]*")
	}
	if Equivalent(a, Plus(Class(Range('a', 'b')))) {
		t.Fatal("[ab]* should differ from [ab]+ (ε)")
	}
}

func TestProperSubset(t *testing.T) {
	if !ProperSubset(Literal("a"), Star(Literal("a"))) {
		t.Fatal("a ⊊ a* should hold")
	}
	if ProperSubset(Star(Literal("a")), Star(Literal("a"))) {
		t.Fatal("L ⊊ L should not hold")
	}
}

func TestFingerprintEquality(t *testing.T) {
	// Same language built two structurally different ways.
	a := Star(Union(Literal("a"), Literal("b")))
	b := Star(Class(Range('a', 'b')))
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("equal languages must have equal fingerprints")
	}
	c := Plus(Class(Range('a', 'b')))
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different languages must have different fingerprints")
	}
}

func TestFingerprintEmptyAndEpsilon(t *testing.T) {
	if Fingerprint(Empty()) == Fingerprint(Epsilon()) {
		t.Fatal("∅ and {ε} must differ")
	}
	if Fingerprint(Empty()) != Fingerprint(Intersect(Literal("a"), Literal("b"))) {
		t.Fatal("two empty languages must match")
	}
}
