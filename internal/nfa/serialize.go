package nfa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization: a line-oriented text format for machines, so solved
// languages can be cached on disk or shipped between tools. The format is
// versioned and self-delimiting:
//
//	dprle-nfa 1
//	states <n> start <s> final <f>
//	edge <from> <to> <ranges>        # ranges: lo-hi[,lo-hi…] in decimal
//	eps <from> <to> [tag]
//	end
//
// Seam tags survive a round trip, so even intermediate solver machines can
// be persisted.

const serializeHeader = "dprle-nfa 1"

// WriteTo serializes the machine in the dprle-nfa text format.
func (m *NFA) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(m.appendWire(make([]byte, 0, 64+32*m.NumStates())))
	return int64(n), err
}

// Marshal returns the machine serialized as a string.
func (m *NFA) Marshal() string {
	return string(m.appendWire(make([]byte, 0, 64+32*m.NumStates())))
}

// appendWire appends the wire-format serialization to b. Serialization sits
// on the canonical-key path, consulted once per cache probe of a fresh
// machine, so it is written with integer appends rather than fmt.
func (m *NFA) appendWire(b []byte) []byte {
	b = append(b, serializeHeader...)
	b = append(b, "\nstates "...)
	b = strconv.AppendInt(b, int64(m.NumStates()), 10)
	b = append(b, " start "...)
	b = strconv.AppendInt(b, int64(m.start), 10)
	b = append(b, " final "...)
	b = strconv.AppendInt(b, int64(m.final), 10)
	b = append(b, '\n')
	for s := 0; s < m.NumStates(); s++ {
		for _, e := range m.edges[s] {
			b = append(b, "edge "...)
			b = strconv.AppendInt(b, int64(s), 10)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(e.To), 10)
			b = append(b, ' ')
			b = appendRangesText(b, e.Label)
			b = append(b, '\n')
		}
		for _, e := range m.eps[s] {
			b = append(b, "eps "...)
			b = strconv.AppendInt(b, int64(s), 10)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(e.To), 10)
			if e.Tag != NoTag {
				b = append(b, ' ')
				b = strconv.AppendInt(b, int64(e.Tag), 10)
			}
			b = append(b, '\n')
		}
	}
	return append(b, "end\n"...)
}

func rangesText(set CharSet) string {
	return string(appendRangesText(make([]byte, 0, 32), set))
}

// appendRangesText appends the maximal contiguous [lo,hi] runs of the set
// as "lo-hi[,lo-hi…]" in decimal.
func appendRangesText(b []byte, set CharSet) []byte {
	first := true
	for c := 0; c < 256; {
		if !set.Contains(byte(c)) {
			c++
			continue
		}
		lo := c
		for c < 256 && set.Contains(byte(c)) {
			c++
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = strconv.AppendInt(b, int64(lo), 10)
		b = append(b, '-')
		b = strconv.AppendInt(b, int64(c-1), 10)
	}
	return b
}

// ReadFrom deserializes a machine written by WriteTo.
func ReadFrom(r io.Reader) (*NFA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := func() (string, bool) {
		for sc.Scan() {
			t := strings.TrimSpace(sc.Text())
			if t != "" && !strings.HasPrefix(t, "#") {
				return t, true
			}
		}
		return "", false
	}
	hdr, ok := line()
	if !ok || hdr != serializeHeader {
		return nil, fmt.Errorf("nfa: bad header %q", hdr)
	}
	decl, ok := line()
	if !ok {
		return nil, fmt.Errorf("nfa: missing states declaration")
	}
	var n, start, final int
	if _, err := fmt.Sscanf(decl, "states %d start %d final %d", &n, &start, &final); err != nil {
		return nil, fmt.Errorf("nfa: bad states declaration %q: %w", decl, err)
	}
	if n <= 0 || start < 0 || start >= n || final < 0 || final >= n {
		return nil, fmt.Errorf("nfa: out-of-range states declaration %q", decl)
	}
	b := NewBuilder()
	b.AddStates(n)
	for {
		l, ok := line()
		if !ok {
			return nil, fmt.Errorf("nfa: missing end marker")
		}
		fields := strings.Fields(l)
		switch fields[0] {
		case "end":
			return b.Build(start, final), nil
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("nfa: bad edge line %q", l)
			}
			var from, to int
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &from, &to); err != nil {
				return nil, fmt.Errorf("nfa: bad edge line %q: %w", l, err)
			}
			set, err := parseRanges(fields[3])
			if err != nil {
				return nil, fmt.Errorf("nfa: bad edge line %q: %w", l, err)
			}
			if from < 0 || from >= n || to < 0 || to >= n {
				return nil, fmt.Errorf("nfa: edge state out of range in %q", l)
			}
			b.AddEdge(from, set, to)
		case "eps":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("nfa: bad eps line %q", l)
			}
			var from, to int
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &from, &to); err != nil {
				return nil, fmt.Errorf("nfa: bad eps line %q: %w", l, err)
			}
			if from < 0 || from >= n || to < 0 || to >= n {
				return nil, fmt.Errorf("nfa: eps state out of range in %q", l)
			}
			if len(fields) == 4 {
				var tag int
				if _, err := fmt.Sscanf(fields[3], "%d", &tag); err != nil || tag < 0 {
					return nil, fmt.Errorf("nfa: bad eps tag in %q", l)
				}
				b.AddTaggedEps(from, to, tag)
			} else {
				b.AddEps(from, to)
			}
		default:
			return nil, fmt.Errorf("nfa: unknown directive %q", fields[0])
		}
	}
}

// Unmarshal parses a machine serialized by Marshal.
func Unmarshal(s string) (*NFA, error) {
	return ReadFrom(strings.NewReader(s))
}

func parseRanges(text string) (CharSet, error) {
	var set CharSet
	for _, part := range strings.Split(text, ",") {
		var lo, hi int
		if _, err := fmt.Sscanf(part, "%d-%d", &lo, &hi); err != nil {
			return set, fmt.Errorf("bad range %q: %w", part, err)
		}
		if lo < 0 || hi > 255 || lo > hi {
			return set, fmt.Errorf("range %q out of bounds", part)
		}
		set.AddRange(byte(lo), byte(hi))
	}
	return set, nil
}
