package nfa

import (
	"encoding/binary"

	"dprle/internal/budget"
)

// DFA is a deterministic, complete automaton over alphabet atoms. Each state
// has exactly one outgoing transition per atom class, and the atom classes
// partition Σ, so every byte has exactly one successor. DFAs are produced by
// Determinize and consumed by Complement, Minimize, and the inclusion/
// equivalence checks.
type DFA struct {
	atoms  []CharSet  // pairwise-disjoint classes covering Σ
	atomOf [256]uint8 // byte → index into atoms, precomputed at construction
	trans  [][]int    // trans[state][atomIndex] = successor state
	accept []bool
	start  int
}

// newDFA assembles a DFA and precomputes its byte→atom dispatch table, so
// membership runs one table lookup per input byte instead of a linear scan
// over the atom classes. atoms must partition Σ (Partition guarantees it),
// so every byte lands in exactly one class and the table is total.
func newDFA(atoms []CharSet, trans [][]int, accept []bool, start int) *DFA {
	d := &DFA{atoms: atoms, trans: trans, accept: accept, start: start}
	for i, a := range atoms {
		for _, c := range a.Bytes() {
			d.atomOf[c] = uint8(i)
		}
	}
	return d
}

// NumStates returns the number of DFA states (including any dead state).
func (d *DFA) NumStates() int { return len(d.trans) }

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// Accepting reports whether state s is accepting.
func (d *DFA) Accepting(s int) bool { return d.accept[s] }

// Atoms returns the alphabet partition the DFA is defined over.
func (d *DFA) Atoms() []CharSet { return d.atoms }

// Accepts reports whether the DFA accepts w.
func (d *DFA) Accepts(w string) bool {
	s := d.start
	for i := 0; i < len(w); i++ {
		s = d.trans[s][d.atomOf[w[i]]]
	}
	return d.accept[s]
}

// Determinize applies the subset construction to m, producing a complete
// DFA over the atom partition induced by m's edge labels.
func Determinize(m *NFA) *DFA {
	d, _ := DeterminizeB(nil, m) // nil budget cannot fail (see budget.Budget)
	return d
}

// DeterminizeB is Determinize under a resource budget: each DFA state the
// subset construction materializes is accounted against bud, and the
// construction aborts with the budget's *Exhausted error when the budget
// trips. Determinization is the solver's worst-case-exponential step (the
// complement-based subset and maximality machinery all route through it),
// so this is where state caps bite first.
func DeterminizeB(bud *budget.Budget, m *NFA) (*DFA, error) {
	atoms := Partition(m.allLabels())
	start := m.startClosure()
	// Subsets are keyed by their raw bitset words: a fixed-width binary
	// encoding, no per-state formatting, one string allocation per probe.
	idx := map[string]int{}
	var sets []stateSet
	var trans [][]int
	var accept []bool
	scratch := make([]byte, 0, len(start)*8)
	add := func(set stateSet) int {
		scratch = set.appendKey(scratch[:0])
		k := string(scratch)
		if id, ok := idx[k]; ok {
			return id
		}
		id := len(sets)
		idx[k] = id
		sets = append(sets, set)
		trans = append(trans, make([]int, len(atoms)))
		accept = append(accept, set.contains(m.final))
		return id
	}
	add(start)
	for qi := 0; qi < len(sets); qi++ {
		// One probe per expanded DFA state: m.step below is O(|m| · edges),
		// so this also bounds the time between context polls.
		if err := bud.AddStates(1, "nfa.determinize"); err != nil {
			return nil, err
		}
		cur := sets[qi]
		for ai, atom := range atoms {
			// All bytes within an atom behave identically, so step on the
			// atom's minimum representative.
			rep, ok := atom.Min()
			if !ok {
				continue
			}
			next := m.step(cur, rep)
			trans[qi][ai] = add(next)
		}
	}
	return newDFA(atoms, trans, accept, 0), nil
}

// Complement returns a DFA recognizing Σ* \ L(d).
func (d *DFA) Complement() *DFA {
	accept := make([]bool, len(d.accept))
	for i, a := range d.accept {
		accept[i] = !a
	}
	return &DFA{atoms: d.atoms, atomOf: d.atomOf, trans: d.trans, accept: accept, start: d.start}
}

// IsEmpty reports whether L(d) = ∅.
func (d *DFA) IsEmpty() bool {
	seen := make([]bool, d.NumStates())
	seen[d.start] = true
	stack := []int{d.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.accept[s] {
			return false
		}
		for _, t := range d.trans[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return true
}

// Minimize returns the canonical minimal DFA for L(d), computed by Moore's
// partition-refinement algorithm over the DFA's atom classes.
func (d *DFA) Minimize() *DFA {
	m, _ := d.MinimizeB(nil) // nil budget cannot fail (see budget.Budget)
	return m
}

// MinimizeB is Minimize under a resource budget, checkpointing once per
// refinement round (each round is O(states · atoms)).
func (d *DFA) MinimizeB(bud *budget.Budget) (*DFA, error) {
	n := d.NumStates()
	// Initial partition: accepting vs non-accepting.
	class := make([]int, n)
	numClasses := 1
	anyAccept := false
	for _, a := range d.accept {
		if a {
			anyAccept = true
		}
	}
	if anyAccept {
		numClasses = 2
		for s := 0; s < n; s++ {
			if d.accept[s] {
				class[s] = 1
			}
		}
	}
	for {
		if err := bud.Check("nfa.minimize"); err != nil {
			return nil, err
		}
		// Signature of a state: (class, successor classes per atom),
		// varint-encoded — one key allocation per state, no formatting.
		sig := make([]string, n)
		var sb []byte
		for s := 0; s < n; s++ {
			sb = binary.AppendUvarint(sb[:0], uint64(class[s]))
			for _, t := range d.trans[s] {
				sb = binary.AppendUvarint(sb, uint64(class[t]))
			}
			sig[s] = string(sb)
		}
		next := map[string]int{}
		newClass := make([]int, n)
		for s := 0; s < n; s++ {
			id, ok := next[sig[s]]
			if !ok {
				id = len(next)
				next[sig[s]] = id
			}
			newClass[s] = id
		}
		if len(next) == numClasses {
			break
		}
		numClasses = len(next)
		class = newClass
	}
	trans := make([][]int, numClasses)
	accept := make([]bool, numClasses)
	done := make([]bool, numClasses)
	for s := 0; s < n; s++ {
		c := class[s]
		if done[c] {
			continue
		}
		done[c] = true
		row := make([]int, len(d.atoms))
		for ai, t := range d.trans[s] {
			row[ai] = class[t]
		}
		trans[c] = row
		accept[c] = d.accept[s]
	}
	return &DFA{atoms: d.atoms, atomOf: d.atomOf, trans: trans, accept: accept, start: class[d.start]}, nil
}

// ToNFA converts d back to a (single-start, single-final) NFA, introducing a
// fresh final state joined by ε-edges from each accepting state.
func (d *DFA) ToNFA() *NFA {
	bl := NewBuilder()
	bl.AddStates(d.NumStates())
	f := bl.AddState()
	for s := 0; s < d.NumStates(); s++ {
		for ai, t := range d.trans[s] {
			bl.AddEdge(s, d.atoms[ai], t)
		}
		if d.accept[s] {
			bl.AddEps(s, f)
		}
	}
	return bl.Build(d.start, f).Trim()
}

// Complement returns an NFA for Σ* \ L(m).
func Complement(m *NFA) *NFA {
	return Determinize(m).Complement().ToNFA()
}

// ComplementB is Complement under a resource budget (the determinization it
// routes through is the expensive part).
func ComplementB(bud *budget.Budget, m *NFA) (*NFA, error) {
	d, err := DeterminizeB(bud, m)
	if err != nil {
		return nil, err
	}
	return d.Complement().ToNFA(), nil
}

// Minimized returns an equivalent NFA with the minimal deterministic state
// count. The paper notes (§4) that applying minimization to intermediate
// machines can improve the pathological cases; the solver exposes this as an
// option.
func Minimized(m *NFA) *NFA {
	return Determinize(m).Minimize().ToNFA()
}

// MinimizedB is Minimized under a resource budget.
func MinimizedB(bud *budget.Budget, m *NFA) (*NFA, error) {
	d, err := DeterminizeB(bud, m)
	if err != nil {
		return nil, err
	}
	md, err := d.MinimizeB(bud)
	if err != nil {
		return nil, err
	}
	return md.ToNFA(), nil
}
