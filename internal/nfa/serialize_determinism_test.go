package nfa

import "testing"

// buildPipelineMachine runs a representative slice of the solver's machine
// pipeline from scratch: union and concatenation with a seam tag, a product,
// the subset construction, and minimization. Determinize and Minimize hash
// state sets through Go maps internally, so a freshly built machine exposes
// any map-iteration-order leak in state numbering.
func buildPipelineMachine() *NFA {
	a := Concat(Literal("ab"), Star(Union(Literal("c"), Literal("dd"))))
	b := ConcatTagged(Literal("a"), Star(Class(Range('a', 'd'))), 7)
	p := Intersect(a, b)
	u := Union(p, Literal("abe"))
	return Minimized(u)
}

// TestSerializeDeterministic rebuilds the pipeline machine repeatedly and
// requires the wire format and the DOT rendering to be byte-identical: state
// numbering, edge order, and label formatting may not depend on map
// iteration order anywhere in the construction chain.
func TestSerializeDeterministic(t *testing.T) {
	const runs = 20
	first := buildPipelineMachine()
	wantWire := first.Marshal()
	wantDot := first.Dot("m")
	if wantWire == "" || wantDot == "" {
		t.Fatal("empty serialization")
	}
	for i := 1; i < runs; i++ {
		m := buildPipelineMachine()
		if got := m.Marshal(); got != wantWire {
			t.Fatalf("run %d wire format differs:\n--- run 0 ---\n%s\n--- run %d ---\n%s", i, wantWire, i, got)
		}
		if got := m.Dot("m"); got != wantDot {
			t.Fatalf("run %d DOT rendering differs:\n--- run 0 ---\n%s\n--- run %d ---\n%s", i, wantDot, i, got)
		}
	}
}

// TestSerializeRoundTripStable checks that deserializing and re-serializing
// is the identity on the wire format, so cached machines stay byte-stable
// across load/store cycles.
func TestSerializeRoundTripStable(t *testing.T) {
	wire := buildPipelineMachine().Marshal()
	m, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Marshal(); got != wire {
		t.Fatalf("round trip changed the wire format:\n--- before ---\n%s\n--- after ---\n%s", wire, got)
	}
}
