package nfa

// Differential gate for the execution substrate (DESIGN.md §11): the
// zero-copy views and bitset kernels must be observationally identical to
// the deep-copy/[]bool implementation they replaced. The reference
// implementations below are deliberately naive transliterations of the old
// substrate — fresh []bool sets per operation, deep copies per induced
// machine — and every comparison goes through them, never through the new
// kernels, so a shared bug cannot hide. The allocation tests pin the
// zero-copy claim itself: a view is one struct allocation regardless of
// machine size. The concurrency test drives the shared memo caches from
// many goroutines for the -race CI job.

import (
	"math/rand"
	"sync"
	"testing"
)

// refNFA is a deep-copied machine evaluated with the pre-rework
// []bool-set algorithms.
type refNFA struct {
	edges [][]Edge
	eps   [][]EpsEdge
	start int
	final int
}

func refFrom(m *NFA) *refNFA {
	n := m.NumStates()
	r := &refNFA{
		edges: make([][]Edge, n),
		eps:   make([][]EpsEdge, n),
		start: m.Start(),
		final: m.Final(),
	}
	for s := 0; s < n; s++ {
		r.edges[s] = append([]Edge(nil), m.EdgesFrom(s)...)
		r.eps[s] = append([]EpsEdge(nil), m.EpsFrom(s)...)
	}
	return r
}

// refInduce is the old Induce: deep-copy the machine, drop every seam edge,
// and re-point start and final at the span endpoints.
func refInduce(m *NFA, start, final int) *refNFA {
	r := refFrom(m)
	for s := range r.eps {
		var kept []EpsEdge
		for _, e := range r.eps[s] {
			if e.Tag == NoTag {
				kept = append(kept, e)
			}
		}
		r.eps[s] = kept
	}
	r.start, r.final = start, final
	return r
}

func (r *refNFA) close(set []bool) {
	var stack []int
	for s, in := range set {
		if in {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range r.eps[q] {
			if !set[e.To] {
				set[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
}

func (r *refNFA) accepts(w string) bool {
	set := make([]bool, len(r.edges))
	set[r.start] = true
	r.close(set)
	for i := 0; i < len(w); i++ {
		next := make([]bool, len(r.edges))
		for s, in := range set {
			if !in {
				continue
			}
			for _, e := range r.edges[s] {
				if e.Label.Contains(w[i]) {
					next[e.To] = true
				}
			}
		}
		r.close(next)
		set = next
	}
	return set[r.final]
}

func (r *refNFA) isEmpty() bool {
	seen := make([]bool, len(r.edges))
	seen[r.start] = true
	stack := []int{r.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range r.edges[s] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
		for _, e := range r.eps[s] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return !seen[r.final]
}

// seamedMachine composes random operand machines with ConcatTagged so the
// result carries the seam edges Induce and DropSeams operate on.
func seamedMachine(r *rand.Rand) *NFA {
	m := ConcatTagged(randMachine(r, 1), randMachine(r, 1), 0)
	if r.Intn(2) == 0 {
		m = ConcatTagged(m, randMachine(r, 1), 1)
	}
	return m
}

func TestSubstrateDifferentialMembership(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for i := 0; i < 120; i++ {
		m := randMachine(r, 2)
		if i%3 == 0 {
			m = seamedMachine(r)
		}
		ref := refFrom(m)
		if got, want := m.IsEmpty(), ref.isEmpty(); got != want {
			t.Fatalf("case %d: IsEmpty=%v, reference says %v", i, got, want)
		}
		for _, w := range sampleStrings(r, 10) {
			if got, want := m.Accepts(w), ref.accepts(w); got != want {
				t.Fatalf("case %d: Accepts(%q)=%v, reference says %v", i, w, got, want)
			}
		}
	}
}

func TestSubstrateDifferentialViews(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for i := 0; i < 80; i++ {
		m := randMachine(r, 2)
		s := r.Intn(m.NumStates())
		f := r.Intn(m.NumStates())
		vs, vf := m.WithStart(s), m.WithFinal(f)
		rs, rf := refFrom(m), refFrom(m)
		rs.start, rf.final = s, f
		for _, w := range sampleStrings(r, 8) {
			if got, want := vs.Accepts(w), rs.accepts(w); got != want {
				t.Fatalf("case %d: WithStart(%d).Accepts(%q)=%v, reference says %v", i, s, w, got, want)
			}
			if got, want := vf.Accepts(w), rf.accepts(w); got != want {
				t.Fatalf("case %d: WithFinal(%d).Accepts(%q)=%v, reference says %v", i, f, w, got, want)
			}
		}
		// The view must not have disturbed the origin.
		orig := refFrom(m)
		for _, w := range sampleStrings(r, 4) {
			if got, want := m.Accepts(w), orig.accepts(w); got != want {
				t.Fatalf("case %d: origin perturbed by views: Accepts(%q)=%v, want %v", i, w, got, want)
			}
		}
	}
}

func TestSubstrateDifferentialInduce(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for i := 0; i < 80; i++ {
		m := seamedMachine(r)
		// The paper's two induced spans per seam, plus a random span.
		spans := [][2]int{}
		for _, te := range m.TaggedEdges() {
			spans = append(spans,
				[2]int{m.Start(), te.From}, // induce_from_final
				[2]int{te.To, m.Final()},   // induce_from_start
			)
		}
		spans = append(spans, [2]int{r.Intn(m.NumStates()), r.Intn(m.NumStates())})
		for _, sp := range spans {
			v := m.Induce(sp[0], sp[1])
			ref := refInduce(m, sp[0], sp[1])
			if got, want := v.IsEmpty(), ref.isEmpty(); got != want {
				t.Fatalf("case %d: Induce(%d,%d).IsEmpty=%v, reference says %v", i, sp[0], sp[1], got, want)
			}
			tr := v.Trim()
			for _, w := range sampleStrings(r, 8) {
				want := ref.accepts(w)
				if got := v.Accepts(w); got != want {
					t.Fatalf("case %d: Induce(%d,%d).Accepts(%q)=%v, reference says %v",
						i, sp[0], sp[1], w, got, want)
				}
				if got := tr.Accepts(w); got != want {
					t.Fatalf("case %d: Induce(%d,%d).Trim().Accepts(%q)=%v, reference says %v",
						i, sp[0], sp[1], w, got, want)
				}
			}
		}
		// DropSeams is Induce over the original span.
		ds := m.DropSeams()
		ref := refInduce(m, m.Start(), m.Final())
		for _, w := range sampleStrings(r, 8) {
			if got, want := ds.Accepts(w), ref.accepts(w); got != want {
				t.Fatalf("case %d: DropSeams().Accepts(%q)=%v, reference says %v", i, w, got, want)
			}
		}
	}
}

func TestSubstrateDifferentialDeterminize(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	for i := 0; i < 60; i++ {
		m := randMachine(r, 2)
		d := Determinize(m)
		min := d.Minimize()
		ref := refFrom(m)
		for _, w := range sampleStrings(r, 10) {
			want := ref.accepts(w)
			if got := d.Accepts(w); got != want {
				t.Fatalf("case %d: Determinize.Accepts(%q)=%v, reference says %v", i, w, got, want)
			}
			if got := min.Accepts(w); got != want {
				t.Fatalf("case %d: Minimize.Accepts(%q)=%v, reference says %v", i, w, got, want)
			}
		}
	}
}

func TestSubstrateDifferentialIntersects(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for i := 0; i < 60; i++ {
		a, b := randMachine(r, 2), randMachine(r, 2)
		want := !refFrom(Intersect(a, b)).isEmpty()
		if got := Intersects(a, b); got != want {
			t.Fatalf("case %d: Intersects=%v, product-emptiness reference says %v", i, got, want)
		}
	}
}

// chainMachine builds a seam-carrying machine with roughly 40×n states, so
// the allocation tests can show per-view cost is independent of size.
func chainMachine(n int) *NFA {
	m := ConcatTagged(Literal("abcde"), Literal("fghij"), 0)
	for i := 1; i < n; i++ {
		m = ConcatTagged(m, Union(Literal("klm"), Star(Literal("no"))), i)
	}
	return m
}

// TestViewAllocationsPinned pins the zero-copy contract: once the shared
// seam-free memo is warm, WithStart/WithFinal/Induce/DropSeams cost exactly
// one allocation — the view struct — no matter how large the machine is.
// A regression to per-call state copying shows up here as an allocation
// count that scales with machine size.
func TestViewAllocationsPinned(t *testing.T) {
	for _, n := range []int{1, 8, 32} {
		m := chainMachine(n)
		m.DropSeams() // warm the shared seam-free memo
		views := map[string]func(){
			"WithStart": func() { _ = m.WithStart(1) },
			"WithFinal": func() { _ = m.WithFinal(0) },
			"Induce":    func() { _ = m.Induce(1, m.Final()) },
			"DropSeams": func() { _ = m.DropSeams() },
		}
		for name, fn := range views {
			if allocs := testing.AllocsPerRun(200, fn); allocs > 1 {
				t.Errorf("%s on %d-state machine: %.1f allocs/call, want <= 1 (zero-copy view)",
					name, m.NumStates(), allocs)
			}
		}
	}
}

// TestClosureCacheConcurrent hammers one shared machine — and views of it —
// from many goroutines, so the -race CI job exercises the lock-free
// ε-closure and seam-free memo caches exactly the way concurrent solves
// over shared interned machines do. Expected answers are computed
// single-threaded first; any torn or mispublished cache entry surfaces as
// a wrong answer or a race report.
func TestClosureCacheConcurrent(t *testing.T) {
	m := chainMachine(6)
	r := rand.New(rand.NewSource(127))
	words := sampleStrings(r, 20)
	words = append(words, "abcdefghij", "abcdefghijklm", "abcdefghijnono")
	want := make([]bool, len(words))
	ref := refFrom(m)
	for i, w := range words {
		want[i] = ref.accepts(w)
	}
	// Expected emptiness of each seam-target→final span, computed
	// single-threaded with the reference implementation. Spans that cross a
	// later (dropped) seam are legitimately empty.
	te := m.TaggedEdges()
	spanEmpty := make([]bool, len(te))
	for i, e := range te {
		spanEmpty[i] = refInduce(m, e.To, m.Final()).isEmpty()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				for i, w := range words {
					if got := m.Accepts(w); got != want[i] {
						t.Errorf("goroutine %d: Accepts(%q)=%v, want %v", g, w, got, want[i])
						return
					}
				}
				k := (g + rep) % len(te)
				v := m.Induce(te[k].To, m.Final())
				if got := v.IsEmpty(); got != spanEmpty[k] {
					t.Errorf("goroutine %d: induced span %d→final IsEmpty=%v, reference says %v",
						g, te[k].To, got, spanEmpty[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestViewCanonicalKeysIndependent guards the one memo that must NOT be
// shared between views: CanonicalKey depends on start/final, so two views
// over the same structure with different spans must key differently, and a
// view must key identically to a deep copy of itself.
func TestViewCanonicalKeysIndependent(t *testing.T) {
	m := chainMachine(2)
	a := m.Induce(m.Start(), m.TaggedEdges()[0].From)
	b := m.Induce(m.TaggedEdges()[0].To, m.Final())
	ka, kb := a.CanonicalKey(), b.CanonicalKey()
	if ka == kb {
		t.Fatalf("views over different spans share a canonical key: %q", ka)
	}
	if kc := a.Copy().CanonicalKey(); kc != ka {
		t.Fatalf("view keys %q but its deep copy keys %q", ka, kc)
	}
}
