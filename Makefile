GO ?= go

.PHONY: all build test race chaos lint lint-stats fix fmt cover bench bench-cache bench-hotpath bench-lint

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the dedicated `race` CI job).
race:
	$(GO) test -race ./...

# Chaos harness: fault-injection sweeps, the worker-pool panic/cancel
# matrix, drain-under-load, and request collapsing under concurrent load,
# all under the race detector (the `chaos` CI job).
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Pool|Drain|Shed|Disconnect|Collapse' ./internal/server/ ./cmd/dprled/

# Static analysis: go vet plus the repo-specific invariant suite
# (DESIGN.md §7), including the interprocedural layer (locksafe, nilness
# N3, budgetflow F3). Both exit non-zero on findings, failing the build.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dprlelint ./...

# lint plus per-analyzer statistics (finding counts, wall time, and the
# conservative-skip counters), bounded at 120s to catch summary-fixpoint
# blowup (the `lint` CI job's lint-stats step).
lint-stats:
	timeout 120 $(GO) run ./cmd/dprlelint -stats ./...

# Lint experiment: the full suite over the module plus the strlang fixture
# drill, with per-analyzer wall time and the solver-call/cache-hit/widening
# counters, written to BENCH_lint.json (the `lint` CI job's smoke step).
bench-lint:
	timeout 180 $(GO) run ./cmd/benchtab -table lint

# Apply dprlelint's suggested fixes (sorted-map-iteration rewrites).
fix:
	$(GO) run ./cmd/dprlelint -fix ./...

fmt:
	gofmt -l -w .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Cache smoke: corpus-wide cached≡uncached equivalence (witnesses verified),
# the >=3x warm-speedup bound, and the cold/warm benchmarks, one iteration
# each (the `bench-cache` CI job). Fails on any cache-correctness assertion.
bench-cache:
	$(GO) test -bench='BenchmarkCache' -benchtime=1x -run 'TestCacheCorpus' -v .

# Hot-path substrate experiment (DESIGN.md §11): steady-state wall time and
# allocations for the five NFA hot-path workloads, read against the frozen
# pre-rework baseline carried inside BENCH_hotpath.json and rewritten in
# place. Bounded so a pathological regression fails instead of hanging CI.
bench-hotpath:
	timeout 300 $(GO) run ./cmd/benchtab -table hotpath
