GO ?= go

.PHONY: all build test race chaos lint fix fmt cover bench

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the dedicated `race` CI job).
race:
	$(GO) test -race ./...

# Chaos harness: fault-injection sweeps, the worker-pool panic/cancel
# matrix, and drain-under-load, all under the race detector (the `chaos`
# CI job).
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Pool|Drain|Shed|Disconnect' ./internal/server/ ./cmd/dprled/

# Static analysis: go vet plus the repo-specific invariant suite
# (DESIGN.md §7). Both exit non-zero on findings, failing the build.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dprlelint ./...

# Apply dprlelint's suggested fixes (sorted-map-iteration rewrites).
fix:
	$(GO) run ./cmd/dprlelint -fix ./...

fmt:
	gofmt -l -w .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
