package dprle_test

// Corpus-wide gate for the zero-copy/bitset NFA substrate (DESIGN.md §11):
// solves over the whole Figure 12 corpus must stay deterministic and
// independently verifiable, and concurrent solves sharing the same machine
// pointers — the situation the lock-free ε-closure and seam-free memo
// caches exist for — must agree with a single-threaded pass. The race CI
// job runs this file under -race, which turns any unsynchronized cache
// publication into a hard failure.

import (
	"sync"
	"testing"

	"dprle/internal/core"
	"dprle/internal/nfa"
)

// TestSubstrateCorpusGate solves two independently built copies of the
// corpus and demands observational agreement — same satisfiability, same
// disjunct count, language-equivalent assignment per variable — with every
// full-solve disjunct verified against the constraint checker. Views and
// bitset kernels are invisible at this level by construction; a substrate
// bug that survives the unit differentials (wrong closure memo, torn view
// state) would surface here as a corpus-level mismatch.
func TestSubstrateCorpusGate(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the corpus twice")
	}
	opts := core.Options{}
	first := corpusSystems(t)
	second := corpusSystems(t)
	for i, ps := range first {
		a, err := core.SolveFor(ps.Sys, ps.Inputs, opts)
		if err != nil {
			t.Fatalf("%s: first solve: %v", ps.Sink.Kind, err)
		}
		b, err := core.SolveFor(second[i].Sys, second[i].Inputs, opts)
		if err != nil {
			t.Fatalf("%s: second solve: %v", ps.Sink.Kind, err)
		}
		if a.Sat() != b.Sat() || len(a.Assignments) != len(b.Assignments) {
			t.Fatalf("%s: independent solves disagree: sat=%v/%d vs sat=%v/%d",
				ps.Sink.Kind, a.Sat(), len(a.Assignments), b.Sat(), len(b.Assignments))
		}
		for d := range a.Assignments {
			for _, v := range ps.Sys.Vars() {
				if !nfa.Equivalent(a.Assignments[d].Lookup(v), b.Assignments[d].Lookup(v)) {
					t.Fatalf("%s: disjunct %d, variable %s: independent solves assign different languages",
						ps.Sink.Kind, d, v)
				}
			}
		}
		full, err := core.Solve(ps.Sys, opts)
		if err != nil {
			t.Fatalf("%s: full solve: %v", ps.Sink.Kind, err)
		}
		for d, asg := range full.Assignments {
			if !core.Satisfies(ps.Sys, asg) {
				t.Fatalf("%s: full-solve disjunct %d does not satisfy the system", ps.Sink.Kind, d)
			}
		}
	}
}

// TestConcurrentSolvesSharedMachines runs the corpus from several
// goroutines over ONE set of systems — every goroutine holds the same *NFA
// pointers, so the ε-closure, canonical-key, and seam-free memos are
// populated and read concurrently, exactly as concurrent server solves over
// interned machines do. Results must match a single-threaded baseline.
func TestConcurrentSolvesSharedMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the corpus once per goroutine")
	}
	opts := core.Options{}
	systems := corpusSystems(t)
	baseline := make([]bool, len(systems))
	disjuncts := make([]int, len(systems))
	for i, ps := range systems {
		res, err := core.SolveFor(ps.Sys, ps.Inputs, opts)
		if err != nil {
			t.Fatalf("%s: baseline solve: %v", ps.Sink.Kind, err)
		}
		baseline[i] = res.Sat()
		disjuncts[i] = len(res.Assignments)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, ps := range systems {
				res, err := core.SolveFor(ps.Sys, ps.Inputs, opts)
				if err != nil {
					t.Errorf("goroutine %d, %s: %v", g, ps.Sink.Kind, err)
					return
				}
				if res.Sat() != baseline[i] || len(res.Assignments) != disjuncts[i] {
					t.Errorf("goroutine %d, %s: sat=%v/%d, baseline sat=%v/%d",
						g, ps.Sink.Kind, res.Sat(), len(res.Assignments), baseline[i], disjuncts[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
