// Command dprled runs the DPRLE solver as a long-lived, fault-isolated
// HTTP/JSON service (see internal/server): constraint systems are POSTed to
// /solve and answered with structured JSON, under per-request budgets
// clamped by server policy, with panic isolation, admission control, and a
// graceful SIGTERM drain.
//
// Usage:
//
//	dprled [flags]                  # serve
//	dprled -client [flags] [file]   # one-shot client with retries
//
// In serve mode dprled prints "dprled: listening on ADDR" once the socket
// is bound (ADDR resolves :0 to the chosen port) and runs until SIGINT or
// SIGTERM, then drains: readiness flips to 503, in-flight solves finish
// within -drain-timeout, and the process exits 0 on a clean drain or 1 if
// stragglers had to be abandoned. Complete answers are memoized in a
// bounded cache (-cache-entries/-cache-bytes) and concurrent identical
// requests share one solve unless -no-collapse; every /solve response
// reports how it was produced in an X-Dprle-Cache: hit|miss|collapsed
// header, and /statusz exposes the counters.
//
// In client mode dprled reads a constraint system from the file argument
// (or standard input), POSTs it to -url, and retries shed (429) and
// draining (503) answers with jittered exponential backoff, honoring the
// server's Retry-After hint. Exit status matches cmd/dprle: 0 sat, 1
// unsat, 2 error, 3 unknown (budget exhausted server-side).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dprle/internal/server"
	"dprle/internal/server/retry"
)

// Exit codes, matching cmd/dprle where the notions coincide.
const (
	exitSat      = 0
	exitUnsat    = 1
	exitError    = 2
	exitUnknown  = 3
	exitDrainCut = 1 // serve mode: drain deadline hit with work in flight
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr, sigs))
}

// run is the testable entry point: signals arrive on sigs so tests can
// deliver a synthetic SIGTERM without touching process state.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("dprled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8723", "listen address (serve mode)")
		workers      = fs.Int("workers", 0, "solver worker goroutines (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		reqTimeout   = fs.Duration("request-timeout", 0, "default per-request deadline (0 = 5s)")
		maxTimeout   = fs.Duration("max-timeout", 0, "ceiling on client-requested deadlines (0 = 30s)")
		maxStates    = fs.Int64("max-states", 0, "ceiling on per-request NFA states (0 = default, negative = unlimited)")
		maxSteps     = fs.Int64("max-steps", 0, "ceiling on per-request solver steps (0 = default, negative = unlimited)")
		bodyLimit    = fs.Int64("body-limit", 0, "request body byte cap (0 = 1MiB)")
		drainTimeout = fs.Duration("drain-timeout", 0, "bound on the SIGTERM drain (0 = 10s)")
		cacheEntries = fs.Int("cache-entries", 0, "solve cache entry cap (0 = 4096, negative = disable caching)")
		cacheBytes   = fs.Int64("cache-bytes", 0, "solve cache byte budget (0 = 64MiB)")
		noCollapse   = fs.Bool("no-collapse", false, "disable collapsing of concurrent identical requests")

		client    = fs.Bool("client", false, "one-shot client mode: POST a system to -url")
		url       = fs.String("url", "http://127.0.0.1:8723", "server base URL (client mode)")
		retries   = fs.Int("retries", 4, "total attempts for shed/draining answers (client mode)")
		retryBase = fs.Duration("retry-base", 200*time.Millisecond, "initial backoff (client mode)")
		timeout   = fs.Duration("timeout", 60*time.Second, "overall deadline including retries (client mode)")
	)
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	if *client {
		return runClient(fs.Args(), stdin, stdout, stderr, *url, *retries, *retryBase, *timeout)
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "dprled: serve mode takes no arguments (use -client to submit a system)")
		return exitError
	}
	return runServe(stdout, stderr, sigs, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		MaxStates:      *maxStates,
		MaxSteps:       *maxSteps,
		MaxBodyBytes:   *bodyLimit,
		DrainTimeout:   *drainTimeout,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		NoCollapse:     *noCollapse,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "dprled: "+format+"\n", a...)
		},
	}, *addr)
}

func runServe(stdout, stderr io.Writer, sigs <-chan os.Signal, cfg server.Config, addr string) int {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "dprled: listen: %v\n", err)
		return exitError
	}
	fmt.Fprintf(stdout, "dprled: listening on %s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(stderr, "dprled: %v received, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), srv.Config().DrainTimeout)
		defer cancel()
		code := exitSat
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(stderr, "dprled: drain incomplete: %v\n", err)
			code = exitDrainCut
		}
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			hs.Close()
		}
		fmt.Fprintln(stderr, "dprled: shutdown complete")
		return code
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return exitSat
		}
		fmt.Fprintf(stderr, "dprled: serve: %v\n", err)
		return exitError
	}
}

func runClient(args []string, stdin io.Reader, stdout, stderr io.Writer, url string, retries int, retryBase, timeout time.Duration) int {
	var src []byte
	var err error
	switch len(args) {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(args[0])
	default:
		fmt.Fprintln(stderr, "dprled: at most one input file")
		return exitError
	}
	if err != nil {
		fmt.Fprintf(stderr, "dprled: reading input: %v\n", err)
		return exitError
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	policy := retry.Policy{
		MaxAttempts: retries,
		BaseDelay:   retryBase,
		MaxDelay:    10 * time.Second,
		Jitter:      0.2,
	}
	var solved server.SolveResponse
	err = policy.Do(ctx, func(ctx context.Context, attempt int) error {
		if attempt > 1 {
			fmt.Fprintf(stderr, "dprled: attempt %d\n", attempt)
		}
		return postOnce(ctx, url, src, &solved)
	})
	if err != nil {
		fmt.Fprintf(stderr, "dprled: %v\n", err)
		return exitError
	}
	enc := json.NewEncoder(stdout)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&solved); err != nil {
		fmt.Fprintf(stderr, "dprled: writing result: %v\n", err)
		return exitError
	}
	switch solved.Status {
	case server.StatusSat:
		return exitSat
	case server.StatusUnsat:
		return exitUnsat
	default:
		return exitUnknown
	}
}

// postOnce makes one /solve round trip, classifying failures for the retry
// policy: connection errors and backpressure (429/503, with the server's
// Retry-After hint) are retryable; everything else is permanent.
func postOnce(ctx context.Context, url string, src []byte, out *server.SolveResponse) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(url, "/")+"/solve", strings.NewReader(string(src)))
	if err != nil {
		return retry.Permanent(fmt.Errorf("building request: %w", err))
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("connecting to solver: %w", err) // retryable
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("reading response: %w", err) // retryable
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(body, out); err != nil {
			return retry.Permanent(fmt.Errorf("decoding response: %w", err))
		}
		return nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var er server.ErrorResponse
		_ = json.Unmarshal(body, &er)
		after := time.Second
		if er.RetryAfterSeconds > 0 {
			after = time.Duration(er.RetryAfterSeconds) * time.Second
		}
		return retry.After(fmt.Errorf("server busy (%d %s)", resp.StatusCode, er.Code), after)
	default:
		var er server.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			if er.IncidentID != "" {
				return retry.Permanent(fmt.Errorf("%s (status %d, incident %s)", er.Error, resp.StatusCode, er.IncidentID))
			}
			return retry.Permanent(fmt.Errorf("%s (status %d)", er.Error, resp.StatusCode))
		}
		return retry.Permanent(fmt.Errorf("unexpected status %d: %s", resp.StatusCode, body))
	}
}
