package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const (
	satSource   = "const c := re /ab/;\nv1 . v2 <= c;\n"
	unsatSource = "const digits := match /^[\\d]+$/;\nconst quote := match /'/;\nv1 <= digits;\n\"nid_\" . v1 <= quote;\n"
)

// syncBuffer is an io.Writer tests can read while run() is still writing
// from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startServer runs serve mode on an ephemeral port and returns its base URL
// plus a shutdown func that delivers SIGTERM and waits for the exit code.
func startServer(t *testing.T, extraArgs ...string) (string, func() int) {
	t.Helper()
	sigs := make(chan os.Signal, 1)
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	exit := make(chan int, 1)
	go func() {
		exit <- run(args, strings.NewReader(""), stdout, stderr, sigs)
	}()

	// The listening line resolves :0 to the real port.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		out := stdout.String()
		if i := strings.Index(out, "listening on "); i >= 0 {
			rest := out[i+len("listening on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				addr = strings.TrimSpace(rest[:j])
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdown := func() int {
		sigs <- syscall.SIGTERM
		select {
		case code := <-exit:
			return code
		case <-time.After(30 * time.Second):
			t.Fatalf("server did not exit after SIGTERM; stderr=%q", stderr.String())
			return -1
		}
	}
	return "http://" + addr, shutdown
}

func TestServeSolveAndDrain(t *testing.T) {
	url, shutdown := startServer(t)

	resp, err := http.Post(url+"/solve", "text/plain", strings.NewReader(satSource))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("exit after SIGTERM = %d, want 0", code)
	}
}

func TestClientExitCodes(t *testing.T) {
	url, shutdown := startServer(t)
	defer shutdown()

	cases := []struct {
		name string
		src  string
		want int
	}{
		{"sat", satSource, exitSat},
		{"unsat", unsatSource, exitUnsat},
		{"parse error", "const broken :=", exitError},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stdout, stderr := &syncBuffer{}, &syncBuffer{}
			code := run([]string{"-client", "-url", url}, strings.NewReader(c.src),
				stdout, stderr, nil)
			if code != c.want {
				t.Fatalf("exit = %d, want %d (stdout=%q stderr=%q)", code, c.want, stdout.String(), stderr.String())
			}
			if c.want == exitSat && !strings.Contains(stdout.String(), `"sat"`) {
				t.Errorf("sat run printed %q", stdout.String())
			}
		})
	}
}

func TestClientReadsFile(t *testing.T) {
	url, shutdown := startServer(t)
	defer shutdown()

	path := t.TempDir() + "/sys.dprle"
	if err := os.WriteFile(path, []byte(satSource), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	if code := run([]string{"-client", "-url", url, path}, strings.NewReader(""), stdout, stderr, nil); code != exitSat {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitSat, stderr.String())
	}
}

// TestClientRetriesBackpressure stubs a server that sheds twice before
// answering, and checks the client's retry loop rides it out.
func TestClientRetriesBackpressure(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": "shed", "code": "queue-full", "retry_after_seconds": 0}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status": "sat", "assignments": [{"v": {"witness": "ab", "states": 3}}], "usage": {"states": 1, "steps": 1}}`)
	}))
	defer stub.Close()

	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	code := run([]string{"-client", "-url", stub.URL, "-retries", "5", "-retry-base", "1ms"},
		strings.NewReader(satSource), stdout, stderr, nil)
	if code != exitSat {
		t.Fatalf("exit = %d, want %d (stderr=%q)", code, exitSat, stderr.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Fatalf("server saw %d calls, want 3 (two shed + one served)", calls)
	}
}

// TestClientGivesUpAfterRetries checks persistent shedding exhausts the
// budget and surfaces as an error exit, not a hang.
func TestClientGivesUpAfterRetries(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error": "draining", "code": "draining", "retry_after_seconds": 0}`)
	}))
	defer stub.Close()

	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	code := run([]string{"-client", "-url", stub.URL, "-retries", "3", "-retry-base", "1ms"},
		strings.NewReader(satSource), stdout, stderr, nil)
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	if !strings.Contains(stderr.String(), "3 attempt") {
		t.Errorf("stderr %q does not mention the attempt count", stderr.String())
	}
}

func TestClientInternalErrorIsPermanent(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error": "boom", "code": "internal", "incident_id": "inc-000001-dead"}`)
	}))
	defer stub.Close()

	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	code := run([]string{"-client", "-url", stub.URL, "-retries", "5", "-retry-base", "1ms"},
		strings.NewReader(satSource), stdout, stderr, nil)
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("500 was retried %d times; incidents are permanent", calls)
	}
	if !strings.Contains(stderr.String(), "inc-000001-dead") {
		t.Errorf("stderr %q does not carry the incident ID", stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"extra-arg-in-serve-mode"},
		{"-client", "-url", "http://127.0.0.1:1", "a", "b"}, // two files
	}
	for _, args := range cases {
		stdout, stderr := &syncBuffer{}, &syncBuffer{}
		if code := run(args, strings.NewReader(""), stdout, stderr, nil); code != exitError {
			t.Errorf("run(%v) = %d, want %d", args, code, exitError)
		}
	}
}
