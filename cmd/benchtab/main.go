// Command benchtab regenerates the paper's evaluation tables and figures:
//
//	benchtab -table fig11        the Figure 11 data-set table
//	benchtab -table fig12        the Figure 12 per-defect results table
//	benchtab -table fig12 -full  … including the warp/secure pathological
//	                             case (takes minutes, like the paper's 577 s)
//	benchtab -table fig12 -full -timeout 2s
//	                             … with a per-path solve budget: the
//	                             pathological row records a budget trip in
//	                             its "exh" column instead of running for
//	                             minutes
//
// Each fig12 row also reports the solver's budget counters (NFA states
// materialized, checkpoints passed, exhausted paths).
//
//	benchtab -table complexity   the §3.5 complexity sweeps
//	benchtab -table cache        the solve-cache cold/warm experiment on the
//	                             fig12 corpus; also writes the report as JSON
//	                             to -cache-json (default BENCH_cache.json)
//	benchtab -table lint         the dprlelint suite over the module plus the
//	                             strlang fixture drill; also writes the report
//	                             as JSON to -lint-json (default BENCH_lint.json)
//	benchtab -table hotpath      the NFA hot-path workloads (product chains,
//	                             induce loop, determinize, DFA membership,
//	                             corpus solve) with wall time and allocation
//	                             counts; compares against the frozen baseline
//	                             in -hotpath-baseline and writes the combined
//	                             report to -hotpath-json (default
//	                             BENCH_hotpath.json for both)
//	benchtab -table all          everything (without -full, secure is skipped)
//
// Measured values are printed alongside the published ones so the shape of
// the results — who is fast, who is pathological, how machines grow — can be
// compared directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dprle/internal/core"
	"dprle/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table     = fs.String("table", "all", "fig11, fig12, complexity, ablation, cache, lint, hotpath, or all")
		full      = fs.Bool("full", false, "include the pathological warp/secure case in fig12")
		minimize  = fs.Bool("minimize", false, "solve with intermediate-machine minimization (ablation)")
		timeout   = fs.Duration("timeout", 0, "per-path solve deadline for fig12; exhausted paths are recorded, not fatal (0 = none)")
		maxStates = fs.Int64("max-states", 0, "per-path cap on NFA states materialized (0 = unlimited)")
		maxSteps  = fs.Int64("max-steps", 0, "per-path cap on solver checkpoints (0 = unlimited)")
		cacheJSON = fs.String("cache-json", "BENCH_cache.json", "write the -table cache report to this file as JSON (empty = don't)")
		lintJSON  = fs.String("lint-json", "BENCH_lint.json", "write the -table lint report to this file as JSON (empty = don't)")
		hotJSON   = fs.String("hotpath-json", "BENCH_hotpath.json", "write the -table hotpath report to this file as JSON (empty = don't)")
		hotBase   = fs.String("hotpath-baseline", "BENCH_hotpath.json", "read the frozen hotpath baseline from this file (empty = none)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opts := core.Options{Minimize: *minimize}

	runFig11 := func() int {
		rows, err := experiments.Figure11()
		if err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, experiments.FormatFigure11(rows))
		return 0
	}
	runFig12 := func() int {
		rows, err := experiments.Figure12Budget(opts, !*full, *timeout, *maxStates, *maxSteps)
		if err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, experiments.FormatFigure12(rows))
		rep := experiments.Shape(rows)
		fmt.Fprintf(stdout, "shape: all exploitable=%v, sub-second defects=%d/16, slowest ordinary=%.3fs",
			rep.AllExploitable, rep.FastCount, rep.SlowestOrdinary.Seconds())
		if rep.PathologicalSkip {
			fmt.Fprintf(stdout, ", secure skipped (use -full)\n")
		} else {
			fmt.Fprintf(stdout, ", secure=%.1fs\n", rep.Pathological.Seconds())
		}
		return 0
	}
	runAblation := func() int {
		const defect = "utopia/styles"
		rows, err := experiments.Ablation(defect)
		if err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, experiments.FormatAblation(defect, rows))
		return 0
	}
	runCache := func() int {
		rep, err := experiments.CacheExperiment(opts, !*full)
		if err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, experiments.FormatCache(rep))
		if *cacheJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintf(stderr, "benchtab: %v\n", err)
				return 2
			}
			if err := os.WriteFile(*cacheJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(stderr, "benchtab: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "wrote %s\n", *cacheJSON)
		}
		return 0
	}
	runLint := func() int {
		root, err := findModuleRoot()
		if err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 2
		}
		rep, err := experiments.LintExperiment(root)
		if err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, experiments.FormatLint(rep))
		if *lintJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintf(stderr, "benchtab: %v\n", err)
				return 2
			}
			if err := os.WriteFile(*lintJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(stderr, "benchtab: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "wrote %s\n", *lintJSON)
		}
		return 0
	}
	runHotpath := func() int {
		baseline := loadHotpathBaseline(*hotBase)
		rep, err := experiments.HotpathExperiment(!*full)
		if err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 2
		}
		file := experiments.CompareHotpath(baseline, rep)
		fmt.Fprintln(stdout, experiments.FormatHotpath(file))
		if *hotJSON != "" {
			data, err := json.MarshalIndent(file, "", "  ")
			if err != nil {
				fmt.Fprintf(stderr, "benchtab: %v\n", err)
				return 2
			}
			if err := os.WriteFile(*hotJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(stderr, "benchtab: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "wrote %s\n", *hotJSON)
		}
		return 0
	}
	runComplexity := func() int {
		out, err := experiments.ComplexityTable([]int{4, 8, 16, 32, 64})
		if err != nil {
			fmt.Fprintf(stderr, "benchtab: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, out)
		return 0
	}

	switch *table {
	case "fig11":
		return runFig11()
	case "fig12":
		return runFig12()
	case "complexity":
		return runComplexity()
	case "ablation":
		return runAblation()
	case "cache":
		return runCache()
	case "lint":
		return runLint()
	case "hotpath":
		return runHotpath()
	case "all":
		if rc := runFig11(); rc != 0 {
			return rc
		}
		if rc := runFig12(); rc != 0 {
			return rc
		}
		if rc := runAblation(); rc != 0 {
			return rc
		}
		if rc := runCache(); rc != 0 {
			return rc
		}
		if rc := runLint(); rc != 0 {
			return rc
		}
		if rc := runHotpath(); rc != 0 {
			return rc
		}
		return runComplexity()
	}
	fmt.Fprintf(stderr, "benchtab: unknown table %q\n", *table)
	return 2
}

// loadHotpathBaseline reads the frozen hot-path baseline from path: either
// a full BENCH_hotpath.json (whose baseline section, or failing that its
// current section, is the baseline) or a bare report. A missing or
// unparseable file just means "no baseline" — the experiment still runs.
func loadHotpathBaseline(path string) *experiments.HotpathReport {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var f experiments.HotpathFile
	if err := json.Unmarshal(data, &f); err == nil {
		if f.Baseline != nil && len(f.Baseline.Rows) > 0 {
			return f.Baseline
		}
		if len(f.Current.Rows) > 0 {
			return &f.Current
		}
	}
	var r experiments.HotpathReport
	if err := json.Unmarshal(data, &r); err == nil && len(r.Rows) > 0 {
		return &r
	}
	return nil
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod, the root the lint experiment loads packages from.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
