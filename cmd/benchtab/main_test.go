package main

import (
	"strings"
	"testing"
)

func TestFig11Table(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"-table", "fig11"}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	for _, want := range []string{"Figure 11", "eve", "utopia", "warp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig12TableSkipsSecure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 16 ordinary defects")
	}
	var out, errb strings.Builder
	if rc := run([]string{"-table", "fig12"}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "(skipped)") {
		t.Fatal("secure should be skipped without -full")
	}
	if !strings.Contains(out.String(), "all exploitable=true") {
		t.Fatalf("shape line missing: %q", out.String())
	}
}

func TestComplexityTableSmall(t *testing.T) {
	// The full sweep list is exercised by the benchmarks; here we only
	// check the plumbing with the unknown-table error path.
	var out, errb strings.Builder
	if rc := run([]string{"-table", "bogus"}, &out, &errb); rc != 2 {
		t.Fatalf("rc = %d, want 2", rc)
	}
	if !strings.Contains(errb.String(), "unknown table") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"-nope"}, &out, &errb); rc != 2 {
		t.Fatalf("rc = %d", rc)
	}
}

func TestAblationTableCmd(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"-table", "ablation"}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "utopia/styles") {
		t.Fatalf("output = %q", out.String())
	}
}
