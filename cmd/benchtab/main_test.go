package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dprle/internal/experiments"
)

func TestFig11Table(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"-table", "fig11"}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	for _, want := range []string{"Figure 11", "eve", "utopia", "warp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig12TableSkipsSecure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 16 ordinary defects")
	}
	var out, errb strings.Builder
	if rc := run([]string{"-table", "fig12"}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "(skipped)") {
		t.Fatal("secure should be skipped without -full")
	}
	if !strings.Contains(out.String(), "all exploitable=true") {
		t.Fatalf("shape line missing: %q", out.String())
	}
}

func TestComplexityTableSmall(t *testing.T) {
	// The full sweep list is exercised by the benchmarks; here we only
	// check the plumbing with the unknown-table error path.
	var out, errb strings.Builder
	if rc := run([]string{"-table", "bogus"}, &out, &errb); rc != 2 {
		t.Fatalf("rc = %d, want 2", rc)
	}
	if !strings.Contains(errb.String(), "unknown table") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"-nope"}, &out, &errb); rc != 2 {
		t.Fatalf("rc = %d", rc)
	}
}

func TestCacheTableWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the corpus several times")
	}
	path := filepath.Join(t.TempDir(), "BENCH_cache.json")
	var out, errb strings.Builder
	if rc := run([]string{"-table", "cache", "-cache-json", path}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "speedup") || !strings.Contains(out.String(), "collapsing") {
		t.Fatalf("output = %q", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.CacheReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_cache.json does not parse: %v", err)
	}
	if rep.Systems == 0 || rep.ColdNS == 0 || rep.WarmNS == 0 {
		t.Fatalf("report missing measurements: %+v", rep)
	}
	if rep.Cache.Hits == 0 || rep.Cache.Misses == 0 {
		t.Fatalf("report missing cache counters: %+v", rep)
	}
	if rep.FlightSolves != 1 || rep.FlightShared != rep.FlightCalls-1 {
		t.Fatalf("collapsing demo executed %d, shared %d of %d",
			rep.FlightSolves, rep.FlightShared, rep.FlightCalls)
	}
}

func TestLintTableWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes every module package plus the strlang fixtures")
	}
	path := filepath.Join(t.TempDir(), "BENCH_lint.json")
	var out, errb strings.Builder
	if rc := run([]string{"-table", "lint", "-lint-json", path}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "strlang") || !strings.Contains(out.String(), "solver calls") {
		t.Fatalf("output = %q", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.LintReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_lint.json does not parse: %v", err)
	}
	if rep.RepoFindings != 0 {
		t.Fatalf("repo is not lint-clean: %d findings", rep.RepoFindings)
	}
	if rep.Packages < 10 || rep.FixturePackages < 5 {
		t.Fatalf("suspiciously small scope: %+v", rep)
	}
	if rep.FixtureFindings == 0 {
		t.Fatal("the seeded fixture defects were not flagged")
	}
	if rep.Discharged == 0 || rep.Discharged != rep.SolverCalls+rep.CacheHits {
		t.Fatalf("discharge accounting broken: %d discharged, %d solver calls + %d cache hits",
			rep.Discharged, rep.SolverCalls, rep.CacheHits)
	}
	if rep.Widenings == 0 {
		t.Fatal("the loop fixtures did not exercise widening")
	}
}

func TestAblationTableCmd(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"-table", "ablation"}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "utopia/styles") {
		t.Fatalf("output = %q", out.String())
	}
}
