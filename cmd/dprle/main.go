// Command dprle is the stand-alone constraint solver: it reads a system of
// subset constraints over regular languages (see internal/textio for the
// format) and prints every disjunctive maximal satisfying assignment — the
// reproduction of the paper's released dprle utility ("implemented … as a
// stand-alone utility in the style of a theorem prover or SAT solver", §4).
//
// Usage:
//
//	dprle [flags] [file.dprle]
//
// With no file, the system is read from standard input. Exit status is 0
// when an assignment exists, 1 when "no assignments found", 2 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dprle/internal/core"
	"dprle/internal/textio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dprle", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		maxSol   = fs.Int("max", 0, "cap on disjunctive assignments (0 = default)")
		minimize = fs.Bool("minimize", false, "minimize intermediate machines")
		raw      = fs.Bool("raw", false, "track constant machines verbatim (paper-prototype mode)")
		nomax    = fs.Bool("nomaximalize", false, "skip the maximality fixpoint (raw seam disjuncts)")
		enum     = fs.Int("enum", 0, "also list up to N language members per variable")
		enumLen  = fs.Int("enumlen", 12, "maximum member length for -enum")
		dotVar   = fs.String("dot", "", "print the first assignment's machine for this variable in Graphviz DOT")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		fmt.Fprintln(stderr, "dprle: at most one input file")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "dprle: %v\n", err)
		return 2
	}

	sys, err := textio.Parse(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "dprle: %v\n", err)
		return 2
	}
	res, err := core.Solve(sys, core.Options{
		MaxSolutions: *maxSol,
		Minimize:     *minimize,
		RawConstants: *raw,
		NoMaximalize: *nomax,
	})
	if err != nil {
		fmt.Fprintf(stderr, "dprle: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, textio.FormatResult(sys, res))
	if *enum > 0 && res.Sat() {
		for i, a := range res.Assignments {
			fmt.Fprintf(stdout, "members of assignment %d:\n", i+1)
			for _, v := range sys.Vars() {
				fmt.Fprintf(stdout, "  %s: %q\n", v, a.Lookup(v).Enumerate(*enumLen, *enum))
			}
		}
	}
	if *dotVar != "" && res.Sat() {
		known := false
		for _, v := range sys.Vars() {
			if v == *dotVar {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(stderr, "dprle: unknown variable %q for -dot\n", *dotVar)
			return 2
		}
		fmt.Fprint(stdout, res.First().Lookup(*dotVar).Dot(*dotVar))
	}
	if !res.Sat() {
		return 1
	}
	return 0
}
