// Command dprle is the stand-alone constraint solver: it reads systems of
// subset constraints over regular languages (see internal/textio for the
// format) and prints every disjunctive maximal satisfying assignment — the
// reproduction of the paper's released dprle utility ("implemented … as a
// stand-alone utility in the style of a theorem prover or SAT solver", §4).
//
// Usage:
//
//	dprle [flags] [file.dprle ...]
//
// With no files, one system is read from standard input. Several files are
// solved in order against a shared component cache (see -cache-size), so
// query batches with recurring sub-systems pay for each component once.
// Exit status is 0 when every system has an assignment, 1 when at least
// one had "no assignments found", 2 on parse or usage errors, and 3 when a
// resource budget (-timeout, -max-states, -max-steps) was exhausted before
// some solve completed; errors dominate exhaustion dominates unsat. On
// exit 3 any verified partial assignments are still printed;
// satisfiability of the rest of the space is unknown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"dprle/internal/budget"
	"dprle/internal/core"
	"dprle/internal/solvecache"
	"dprle/internal/textio"
)

// Exit codes. A budget trip does not kill the process mid-write: the solver
// unwinds cleanly, partial results are printed, then the code is returned.
const (
	exitSat       = 0
	exitUnsat     = 1
	exitError     = 2
	exitExhausted = 3
)

// severity orders exit codes for multi-file runs: the most severe outcome
// wins, with hard errors above budget exhaustion.
func severity(code int) int {
	switch code {
	case exitError:
		return 3
	case exitExhausted:
		return 2
	case exitUnsat:
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dprle", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		maxSol    = fs.Int("max", 0, "cap on disjunctive assignments (0 = default)")
		minimize  = fs.Bool("minimize", false, "minimize intermediate machines")
		raw       = fs.Bool("raw", false, "track constant machines verbatim (paper-prototype mode)")
		nomax     = fs.Bool("nomaximalize", false, "skip the maximality fixpoint (raw seam disjuncts)")
		enum      = fs.Int("enum", 0, "also list up to N language members per variable")
		enumLen   = fs.Int("enumlen", 12, "maximum member length for -enum")
		dotVar    = fs.String("dot", "", "print the first assignment's machine for this variable in Graphviz DOT")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget per solve; on expiry partial results print and exit status is 3 (0 = none)")
		maxStates = fs.Int64("max-states", 0, "cap on NFA states materialized during a solve (0 = unlimited)")
		maxSteps  = fs.Int64("max-steps", 0, "cap on solver checkpoints (0 = unlimited)")
		cacheSize = fs.Int64("cache-size", 0, "byte budget for the component solve cache shared across input files (0 = default 64 MiB, negative = disable)")
		usage     = fs.Bool("usage", false, "report resource usage and cache counters on stderr after the solves")
	)
	if err := fs.Parse(args); err != nil {
		return exitError
	}
	if *timeout < 0 || *maxStates < 0 || *maxSteps < 0 {
		fmt.Fprintln(stderr, "dprle: -timeout, -max-states, and -max-steps must be non-negative")
		return exitError
	}

	type input struct{ name, src string }
	var inputs []input
	if fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintf(stderr, "dprle: %v\n", err)
			return exitError
		}
		inputs = append(inputs, input{"<stdin>", string(src)})
	} else {
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "dprle: %v\n", err)
				return exitError
			}
			inputs = append(inputs, input{path, string(src)})
		}
	}

	// One cache outlives all solves of the batch: a component solved for
	// an earlier file answers instantly for every later file that repeats
	// it (and within one file, repeated constants share minimized forms).
	var cache *solvecache.Cache
	if *cacheSize >= 0 {
		cache = solvecache.New(solvecache.Config{MaxBytes: *cacheSize})
	}

	solveOne := func(name, src string) int {
		sys, err := textio.Parse(src)
		if err != nil {
			fmt.Fprintf(stderr, "dprle: %s: %v\n", name, err)
			return exitError
		}

		// The timeout cancels the solve, not the process: the solver
		// unwinds at its next checkpoint and returns whatever it had
		// verified by then.
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		res, solveErr := core.SolveCtx(ctx, sys, core.Options{
			MaxSolutions: *maxSol,
			Minimize:     *minimize,
			RawConstants: *raw,
			NoMaximalize: *nomax,
			Cache:        cache,
			Limits:       budget.Limits{MaxStates: *maxStates, MaxSteps: *maxSteps},
		})
		var exhausted *budget.Exhausted
		if solveErr != nil && !errors.As(solveErr, &exhausted) {
			// Structural/internal failure, not a budget trip.
			fmt.Fprintf(stderr, "dprle: %s: %v\n", name, solveErr)
			return exitError
		}
		fmt.Fprint(stdout, textio.FormatResult(sys, res))
		if *enum > 0 && res.Sat() {
			for i, a := range res.Assignments {
				fmt.Fprintf(stdout, "members of assignment %d:\n", i+1)
				for _, v := range sys.Vars() {
					fmt.Fprintf(stdout, "  %s: %q\n", v, a.Lookup(v).Enumerate(*enumLen, *enum))
				}
			}
		}
		if *dotVar != "" && res.Sat() {
			known := false
			for _, v := range sys.Vars() {
				if v == *dotVar {
					known = true
				}
			}
			if !known {
				fmt.Fprintf(stderr, "dprle: unknown variable %q for -dot\n", *dotVar)
				return exitError
			}
			fmt.Fprint(stdout, res.First().Lookup(*dotVar).Dot(*dotVar))
		}
		if *usage {
			fmt.Fprintf(stderr, "dprle: %s: usage: states=%d steps=%d exhausted=%v\n",
				name, res.Usage.States, res.Usage.Steps, res.Usage.Exhausted)
		}
		if exhausted != nil {
			if res.Sat() {
				fmt.Fprintf(stderr, "dprle: %s: %v; the assignments above are verified but enumeration is incomplete\n", name, solveErr)
			} else {
				fmt.Fprintf(stderr, "dprle: %s: %v; satisfiability unknown\n", name, solveErr)
			}
			return exitExhausted
		}
		if !res.Sat() {
			return exitUnsat
		}
		return exitSat
	}

	code := exitSat
	for _, in := range inputs {
		if len(inputs) > 1 {
			fmt.Fprintf(stdout, "== %s ==\n", in.name)
		}
		if c := solveOne(in.name, in.src); severity(c) > severity(code) {
			code = c
		}
	}
	if *usage && cache != nil {
		st := cache.Stats()
		fmt.Fprintf(stderr, "dprle: cache: hits=%d misses=%d puts=%d evictions=%d entries=%d bytes=%d\n",
			st.Hits, st.Misses, st.Puts, st.Evictions, st.Entries, st.Bytes)
	}
	return code
}
