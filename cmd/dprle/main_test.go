package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSolvesStdin(t *testing.T) {
	in := strings.NewReader(`
const filter := match /[\d]+$/;
const unsafe := match /'/;
input <= filter;
"nid_" . input <= unsafe;
`)
	var out, errb strings.Builder
	rc := run(nil, in, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "assignment 1:") || !strings.Contains(out.String(), "input = ") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunSolvesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sys.dprle")
	src := "const c := re /ab*/;\nv <= c;\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	rc := run([]string{"-enum", "3", path}, strings.NewReader(""), &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "members of assignment 1:") {
		t.Fatalf("missing enumeration: %q", out.String())
	}
}

func TestRunUnsatExitCode(t *testing.T) {
	in := strings.NewReader("const a := re /x/;\nconst b := re /y/;\nv <= a;\nv <= b;\n")
	var out, errb strings.Builder
	rc := run(nil, in, &out, &errb)
	if rc != 1 {
		t.Fatalf("rc = %d, want 1", rc)
	}
	if !strings.Contains(out.String(), "no assignments found") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunParseError(t *testing.T) {
	var out, errb strings.Builder
	rc := run(nil, strings.NewReader("v <= undeclared;"), &out, &errb)
	if rc != 2 || !strings.Contains(errb.String(), "dprle:") {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
}

func TestRunMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	sat := filepath.Join(dir, "sat.dprle")
	unsat := filepath.Join(dir, "unsat.dprle")
	if err := os.WriteFile(sat, []byte("const c := re /ab*/;\nv <= c;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(unsat, []byte("const a := re /x/;\nconst b := re /y/;\nv <= a;\nv <= b;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	rc := run([]string{sat, unsat}, strings.NewReader(""), &out, &errb)
	if rc != 1 {
		t.Fatalf("rc = %d, want 1 (unsat dominates sat); stderr %q", rc, errb.String())
	}
	for _, want := range []string{"== " + sat + " ==", "== " + unsat + " ==", "assignment 1:", "no assignments found"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunBatchCacheReuse solves the same file twice in one invocation: the
// second solve must hit the shared component cache, and -usage must report
// the counters.
func TestRunBatchCacheReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sys.dprle")
	src := "const c := re /ab/;\nv1 . v2 <= c;\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	rc := run([]string{"-usage", path, path}, strings.NewReader(""), &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(errb.String(), "cache: hits=") {
		t.Fatalf("stderr missing cache counters: %q", errb.String())
	}
	if strings.Contains(errb.String(), "cache: hits=0 ") {
		t.Fatalf("repeated file produced no cache hits: %q", errb.String())
	}
	// Both solves print the same assignments.
	if got := strings.Count(out.String(), "assignment 1:"); got != 2 {
		t.Fatalf("assignment blocks = %d, want 2:\n%s", got, out.String())
	}

	// With caching disabled the batch still solves, with zero reuse.
	var out2, errb2 strings.Builder
	if rc := run([]string{"-cache-size", "-1", path, path}, strings.NewReader(""), &out2, &errb2); rc != 0 {
		t.Fatalf("disabled-cache rc = %d, stderr %q", rc, errb2.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"/nonexistent/x.dprle"}, strings.NewReader(""), &out, &errb); rc != 2 {
		t.Fatalf("rc = %d, want 2", rc)
	}
}

func TestRunFlagVariants(t *testing.T) {
	src := "const c := re /a+/;\nv <= c;\n"
	for _, flags := range [][]string{
		{"-minimize"}, {"-raw"}, {"-nomaximalize"}, {"-max", "2"},
	} {
		var out, errb strings.Builder
		rc := run(flags, strings.NewReader(src), &out, &errb)
		if rc != 0 {
			t.Fatalf("flags %v: rc = %d, stderr %q", flags, rc, errb.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if rc := run([]string{"-bogus"}, strings.NewReader(""), &out, &errb); rc != 2 {
		t.Fatalf("rc = %d, want 2", rc)
	}
}

// bombSrc is a system whose solve determinizes an exponentially-blowing
// NFA ((a|b)*a(a|b)^24), guaranteeing any small budget trips.
const bombSrc = "const bomb := re /(a|b)*a(a|b){24}/;\nv1 . v2 <= bomb;\n"

func TestRunTimeoutExitCode(t *testing.T) {
	var out, errb strings.Builder
	rc := run([]string{"-timeout", "150ms"}, strings.NewReader(bombSrc), &out, &errb)
	if rc != 3 {
		t.Fatalf("rc = %d, want 3; stderr %q", rc, errb.String())
	}
	if !strings.Contains(errb.String(), "budget exhausted") {
		t.Fatalf("stderr = %q, want budget-exhausted note", errb.String())
	}
	// The timeout kills the solve, not the process: results (possibly
	// "no assignments found") must still have been printed.
	if out.String() == "" {
		t.Fatal("no result output printed on budget exhaustion")
	}
}

func TestRunMaxStatesExitCode(t *testing.T) {
	var out, errb strings.Builder
	rc := run([]string{"-max-states", "2000", "-usage"}, strings.NewReader(bombSrc), &out, &errb)
	if rc != 3 {
		t.Fatalf("rc = %d, want 3; stderr %q", rc, errb.String())
	}
	if !strings.Contains(errb.String(), "max-states") {
		t.Fatalf("stderr = %q, want a max-states trip", errb.String())
	}
	if !strings.Contains(errb.String(), "usage: states=") {
		t.Fatalf("stderr = %q, want -usage counters", errb.String())
	}
}

func TestRunGenerousBudgetStillSat(t *testing.T) {
	src := "const c := re /ab*/;\nv <= c;\n"
	var out, errb strings.Builder
	rc := run([]string{"-timeout", "30s", "-max-states", "1000000", "-max-steps", "1000000"},
		strings.NewReader(src), &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "assignment 1:") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunDotOutput(t *testing.T) {
	src := "const c := re /ab/;\nv <= c;\n"
	var out, errb strings.Builder
	if rc := run([]string{"-dot", "v"}, strings.NewReader(src), &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Fatalf("missing DOT output: %q", out.String())
	}
	var out2, errb2 strings.Builder
	if rc := run([]string{"-dot", "nosuch"}, strings.NewReader(src), &out2, &errb2); rc != 2 {
		t.Fatalf("unknown -dot variable rc = %d", rc)
	}
}
