// Package regress deliberately re-introduces the bug class PR 1 removed:
// an un-budgeted Determinize call inside a budgeted solver path. The
// multichecker test asserts dprlelint fails on it, which is what keeps the
// CI lint gate meaningful.
package regress

import (
	"budget"
	"nfa"
)

func SolveB(bud *budget.Budget, m *nfa.NFA) (*nfa.DFA, error) {
	return nfa.Determinize(m), nil // budgetcheck must flag this line
}

// CloneMachine seeds the guaranteed nil dereference the nilness analyzer
// exists to catch: on the branch below m is provably nil, and *m panics on
// every execution reaching it.
func CloneMachine(m *nfa.NFA) nfa.NFA {
	if m == nil {
		return *m // nilness must flag this line
	}
	return *m // clean: m is non-nil on this path
}

type machine struct{ states int }

// stateCount dereferences its parameter unconditionally; its summary is
// what makes the seeded call below visible to interprocedural nilness.
func stateCount(m *machine) int {
	return m.states
}

// CountStates seeds the cross-function nil flow N3 exists to catch: the
// nil literal panics one call deep, inside stateCount, which only the
// summary-based layer can see.
func CountStates() int {
	return stateCount(nil) // interprocedural nilness must flag this line
}
