// sqlgen-style seeded regression for the strlang gate: a query built with
// fmt.Sprintf from unconstrained input reaches database/sql with no
// annotation anywhere. If the full suite stops flagging this, the
// string-language analysis has gone dark.
package sqlregress

import (
	"database/sql"
	"fmt"
)

// UsersByName builds its query by splicing user straight between quotes;
// the solver refutes containment in the balanced-quote contract and
// produces the escaping witness.
func UsersByName(db *sql.DB, user string) (*sql.Rows, error) {
	q := fmt.Sprintf("select id, name from users where name = '%s' order by id", user)
	return db.Query(q)
}

// UsersByID formats only a digit string into the query, which the solver
// proves balanced: the safe sibling must stay unflagged.
func UsersByID(db *sql.DB, id int) (*sql.Rows, error) {
	q := fmt.Sprintf("select id, name from users where id = %d", id)
	return db.Query(q)
}
