// Package nfa is a skeletal model of dprle/internal/nfa for the
// regression fixture: just enough of the Determinize/DeterminizeB sibling
// pair for budgetcheck to recognize the convention.
package nfa

import "budget"

type NFA struct{ states int }

type DFA struct{ states int }

func Determinize(m *NFA) *DFA {
	d, _ := DeterminizeB(nil, m)
	return d
}

func DeterminizeB(bud *budget.Budget, m *NFA) (*DFA, error) {
	if err := bud.AddStates(int64(m.states), "determinize"); err != nil {
		return nil, err
	}
	return &DFA{states: 1 << m.states}, nil
}
