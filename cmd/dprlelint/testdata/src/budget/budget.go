// Package budget is a minimal stand-in for dprle/internal/budget, used by
// the regression fixture.
package budget

import "errors"

type Budget struct{ remaining int64 }

func (b *Budget) AddStates(n int64, stage string) error {
	if b == nil {
		return nil
	}
	b.remaining -= n
	if b.remaining < 0 {
		return errors.New("exhausted: " + stage)
	}
	return nil
}
