// Command dprlelint runs the project's static-analysis suite (see
// internal/analyzers) over the module's packages, in the style of a
// go/analysis multichecker:
//
//	go run ./cmd/dprlelint ./...          # whole module
//	go run ./cmd/dprlelint ./internal/nfa # one package
//	dprlelint -only budgetcheck ./...     # a subset of analyzers
//	dprlelint -json ./...                 # machine-readable findings
//	dprlelint -fix ./...                  # apply suggested fixes in place
//	dprlelint -list                       # the suite, one line each
//	dprlelint -help nilness               # full docs for one analyzer
//	dprlelint -stats ./...                # per-analyzer counts and wall time
//	dprlelint -interproc=false ./...      # intraprocedural analyses only
//
// Findings are reported in a single global order — file, line, column,
// analyzer — across all packages and analyzers, so -json and CI output
// are byte-stable.
//
// Exit status: 0 no findings, 1 findings reported, 2 usage or load error.
// Findings are suppressed by //lint:ignore dprlelint/<analyzer> <reason>
// directives on the flagged line or the line above; the reason is
// mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dprle/internal/analysis"
	"dprle/internal/analyzers"
	"dprle/internal/analyzers/interproc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dprlelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source files")
	list := fs.Bool("list", false, "list available analyzers with a one-line summary and exit")
	help := fs.String("help", "", "print the full documentation for one analyzer and exit")
	ip := fs.Bool("interproc", true, "enable the summary-based interprocedural layer (locksafe, nilness N3, budgetflow F3)")
	stats := fs.Bool("stats", false, "print per-analyzer statistics (findings, wall time, counters) after the findings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dprlelint [-json] [-fix] [-only name,...] [-interproc=bool] [-stats] [-list] [-help name] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	interproc.Enabled = *ip

	suite := analyzers.All()
	if *help != "" {
		for _, a := range suite {
			if a.Name == *help {
				fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
				return 0
			}
		}
		fmt.Fprintf(stderr, "dprlelint: unknown analyzer %q; run -list for the suite\n", *help)
		return 2
	}
	if *list {
		width := 0
		for _, a := range suite {
			if len(a.Name) > width {
				width = len(a.Name)
			}
		}
		for _, a := range suite {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stdout, "%-*s  %s\n", width, a.Name, summary)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			unknown := make([]string, 0, len(keep))
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "dprlelint: unknown analyzers: %s\n", strings.Join(unknown, ", "))
			return 2
		}
		suite = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "dprlelint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "dprlelint: %v\n", err)
		return 2
	}
	paths, err := expandPatterns(loader, root, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "dprlelint: %v\n", err)
		return 2
	}

	var all []analysis.Finding
	merged := map[string]analysis.AnalyzerStats{}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "dprlelint: %v\n", err)
			return 2
		}
		findings, pkgStats, err := analysis.RunStats(pkg, loader.Fset, suite)
		if err != nil {
			fmt.Fprintf(stderr, "dprlelint: %v\n", err)
			return 2
		}
		for name, st := range pkgStats {
			m := merged[name]
			m.Merge(st)
			merged[name] = m
		}
		if *fix && len(findings) > 0 {
			fixed, err := analysis.ApplyFixes(loader.Fset, pkg.Sources, findings)
			if err != nil {
				fmt.Fprintf(stderr, "dprlelint: %v\n", err)
				return 2
			}
			names := make([]string, 0, len(fixed))
			for name := range fixed {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if err := os.WriteFile(name, fixed[name], 0o644); err != nil {
					fmt.Fprintf(stderr, "dprlelint: %v\n", err)
					return 2
				}
				fmt.Fprintf(stderr, "dprlelint: rewrote %s\n", name)
			}
		}
		all = append(all, findings...)
	}

	// Findings were collected package by package; re-sort globally so the
	// output is ordered by file:line:col across analyzer and package
	// boundaries — byte-stable for CI diffing no matter how the package
	// list was produced.
	analysis.SortFindings(all)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "dprlelint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range all {
			fmt.Fprintln(stdout, f)
		}
	}
	if *stats {
		printStats(stderr, suite, merged)
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// printStats renders the merged per-analyzer statistics as a table, in
// suite order. It writes to stderr so that stdout (findings, -json) stays
// byte-stable: wall times vary run to run.
func printStats(w io.Writer, suite []*analysis.Analyzer, merged map[string]analysis.AnalyzerStats) {
	width := len("analyzer")
	for _, a := range suite {
		if len(a.Name) > width {
			width = len(a.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %8s  %10s  counters\n", width, "analyzer", "findings", "wall")
	var total analysis.AnalyzerStats
	for _, a := range suite {
		st := merged[a.Name]
		total.Merge(st)
		keys := make([]string, 0, len(st.Counters))
		for k := range st.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", k, st.Counters[k]))
		}
		counters := "-"
		if len(parts) > 0 {
			counters = strings.Join(parts, " ")
		}
		fmt.Fprintf(w, "%-*s  %8d  %10s  %s\n", width, a.Name, st.Findings, st.Wall.Round(time.Microsecond), counters)
	}
	fmt.Fprintf(w, "%-*s  %8d  %10s\n", width, "total", total.Findings, total.Wall.Round(time.Microsecond))
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves command-line package patterns ("./...", "./x",
// import paths) against the module.
func expandPatterns(loader *analysis.Loader, root string, patterns []string) ([]string, error) {
	mod := loader.ModulePath()
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "..." || pat == mod+"/...":
			all, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			prefix = strings.TrimPrefix(prefix, "./")
			all, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range all {
				rel := strings.TrimPrefix(p, mod+"/")
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matches no packages", pat)
			}
		case pat == ".":
			add(mod)
		case strings.HasPrefix(pat, "./"):
			add(mod + "/" + filepath.ToSlash(strings.TrimPrefix(pat, "./")))
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}
