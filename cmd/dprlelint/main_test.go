package main

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"dprle/internal/analysis"
	"dprle/internal/analyzers"
	"dprle/internal/analyzers/interproc"
)

// repoRoot locates the module root from this test file's position, so the
// test is independent of the working directory go test chooses.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestRepoClean is the acceptance gate: the full analyzer suite reports
// nothing on the repository itself. Any new finding is either a real bug
// (fix it) or a deliberate exception (//lint:ignore with a reason).
func TestRepoClean(t *testing.T) {
	root := repoRoot(t)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages found (%d): %v", len(paths), paths)
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		findings, err := analysis.Run(pkg, loader.Fset, analyzers.All())
		if err != nil {
			t.Fatalf("analyzing %s: %v", path, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

// TestUnbudgetedDeterminizeFails proves the lint gate catches the
// regression the suite exists for: re-introducing an un-budgeted
// Determinize call inside a budgeted path must produce a finding (and
// therefore a non-zero dprlelint exit, failing CI).
func TestUnbudgetedDeterminizeFails(t *testing.T) {
	loader := analysis.NewSourceLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("regress")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkg, loader.Fset, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Analyzer == "budgetcheck" && strings.Contains(f.Message, "un-budgeted Determinize") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a budgetcheck finding for un-budgeted Determinize, got %v", findings)
	}
}

// TestListFlag pins -list: every analyzer appears with its one-line
// summary, aligned into a two-column table.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	suite := analyzers.All()
	if len(lines) != len(suite) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(suite), stdout.String())
	}
	for i, a := range suite {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		if !strings.HasPrefix(lines[i], a.Name) || !strings.HasSuffix(lines[i], summary) {
			t.Errorf("-list line %d = %q, want %q ... %q", i, lines[i], a.Name, summary)
		}
	}
}

// TestHelpFlag pins -help <name>: the analyzer's full Doc string is
// printed, and an unknown name is a usage error.
func TestHelpFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-help", "nilness"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-help nilness exited %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"nilness:", "N1", "N2", "lint:ignore dprlelint/nilness"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-help nilness output lacks %q:\n%s", want, stdout.String())
		}
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-help", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-help nosuch exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("-help nosuch stderr = %q, want an unknown-analyzer error", stderr.String())
	}
}

// TestSeededNilDerefFails proves the flow-sensitive gate works end to end:
// a guaranteed nil dereference seeded into a solver path must produce a
// nilness finding (and therefore a non-zero dprlelint exit, failing CI).
func TestSeededNilDerefFails(t *testing.T) {
	loader := analysis.NewSourceLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("regress")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkg, loader.Fset, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Analyzer == "nilness" && strings.Contains(f.Message, "provably nil dereference of m") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a nilness finding for the seeded nil dereference, got %v", findings)
	}
}

// TestSeededSQLInjectionFails proves the string-language gate works end to
// end: a sqlgen-style query assembled with fmt.Sprintf from unconstrained
// input (testdata/src/sqlregress) must produce a strlang finding carrying
// the solver's counterexample — with no //dprle:subset annotation in the
// fixture, so the detection rests entirely on the built-in sink table —
// while the digits-only sibling stays unflagged.
func TestSeededSQLInjectionFails(t *testing.T) {
	loader := analysis.NewSourceLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("sqlregress")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkg, loader.Fset, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	var strlangFindings []analysis.Finding
	for _, f := range findings {
		if f.Analyzer == "strlang" {
			strlangFindings = append(strlangFindings, f)
		}
	}
	if len(strlangFindings) != 1 {
		t.Fatalf("want exactly one strlang finding (UsersByName flagged, UsersByID clean), got %v", findings)
	}
	msg := strlangFindings[0].Message
	for _, want := range []string{"subset constraint violated", "balanced-sql-quotes", `'`} {
		if !strings.Contains(msg, want) {
			t.Errorf("strlang finding %q lacks %q", msg, want)
		}
	}
}

// TestJSONDeterminism is the byte-stability gate for the interprocedural
// suite: two full -json runs over the module must produce identical bytes.
// Call-graph SCC order, summary fixpoints, and lockset iteration all use
// maps internally; any map order leaking into findings shows up here as a
// diff between the two runs.
func TestJSONDeterminism(t *testing.T) {
	runOnce := func() string {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-json", "./..."}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("-json ./... exited %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
		}
		return stdout.String()
	}
	first := runOnce()
	second := runOnce()
	if first != second {
		t.Errorf("two -json runs differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestStatsFlag pins -stats: one row per analyzer plus a total, on stderr,
// with the interprocedural skip counter surfaced.
func TestStatsFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-stats", "./internal/solvecache"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-stats exited %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	out := stderr.String()
	for _, a := range analyzers.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-stats output lacks analyzer %s:\n%s", a.Name, out)
		}
	}
	for _, want := range []string{"analyzer", "findings", "wall", "total", "dynamic-calls-skipped="} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output lacks %q:\n%s", want, out)
		}
	}
}

// TestInterprocFlag pins the escape hatch: with -interproc=false the
// seeded cross-function nil flow in testdata/src/regress is invisible
// (N3 needs summaries), and with the default it is reported.
func TestInterprocFlag(t *testing.T) {
	loader := analysis.NewSourceLoader(filepath.Join("testdata", "src"))
	findingsWith := func(enabled bool) []analysis.Finding {
		t.Helper()
		defer func(prev bool) { interproc.Enabled = prev }(interproc.Enabled)
		interproc.Enabled = enabled
		pkg, err := loader.Load("regress")
		if err != nil {
			t.Fatal(err)
		}
		findings, err := analysis.Run(pkg, loader.Fset, analyzers.All())
		if err != nil {
			t.Fatal(err)
		}
		return findings
	}
	hasN3 := func(fs []analysis.Finding) bool {
		for _, f := range fs {
			if f.Analyzer == "nilness" && strings.Contains(f.Message, "panic one call deep") {
				return true
			}
		}
		return false
	}
	if !hasN3(findingsWith(true)) {
		t.Error("interproc on: expected an N3 finding for the seeded cross-function nil flow")
	}
	if hasN3(findingsWith(false)) {
		t.Error("interproc off: N3 finding reported without summaries")
	}
}

// TestExpandPatterns pins the CLI's pattern handling.
func TestExpandPatterns(t *testing.T) {
	root := repoRoot(t)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	all, err := expandPatterns(loader, root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"dprle":                   false,
		"dprle/internal/nfa":      false,
		"dprle/cmd/dprlelint":     false,
		"dprle/internal/analysis": false,
	}
	for _, p := range all {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("pattern ./... did not match %s (got %v)", p, all)
		}
	}
	sub, err := expandPatterns(loader, root, []string{"./internal/nfa"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0] != "dprle/internal/nfa" {
		t.Errorf("expandPatterns(./internal/nfa) = %v", sub)
	}
	tree, err := expandPatterns(loader, root, []string{"./internal/analyzers/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) < 5 {
		t.Errorf("expandPatterns(./internal/analyzers/...) = %v, want the analyzer packages", tree)
	}
}

// TestServingPackagesInScope pins the dprled serving stack into the lint
// walk: if a refactor moved these packages (or ModulePackages stopped
// seeing them), TestRepoClean would silently stop checking the solver
// invariants — budget flow, context discipline, panic contracts — on the
// very layer that runs untrusted input.
func TestServingPackagesInScope(t *testing.T) {
	loader, err := analysis.NewLoader(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		seen[p] = true
	}
	for _, want := range []string{
		"dprle/internal/server",
		"dprle/internal/server/retry",
		"dprle/cmd/dprled",
	} {
		if !seen[want] {
			t.Errorf("package %s missing from the lint scope %v", want, paths)
		}
	}
}
