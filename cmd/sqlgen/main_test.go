package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefect(t *testing.T) {
	var out, errb strings.Builder
	rc := run([]string{"-defect", "eve/edit"}, &out, &errb)
	if rc != 1 {
		t.Fatalf("rc = %d (want 1 = vulnerable), stderr %q", rc, errb.String())
	}
	if !strings.Contains(out.String(), "|FG|=58") || !strings.Contains(out.String(), "|C|=29") {
		t.Fatalf("metrics missing: %q", out.String())
	}
	if !strings.Contains(out.String(), "sql injection via") {
		t.Fatalf("finding missing: %q", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	rc := run([]string{"-list"}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d", rc)
	}
	if got := strings.Count(out.String(), "\n"); got != 17 {
		t.Fatalf("listed %d defects, want 17", got)
	}
	if !strings.Contains(out.String(), "warp/secure") {
		t.Fatal("secure missing from list")
	}
}

func TestRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "page.php")
	src := `<?php
$id = $_GET['id'];
if (!preg_match('/[0-9]$/', $id)) { exit; }
query("SELECT " . $id);
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	rc := run([]string{path}, &out, &errb)
	if rc != 1 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
}

func TestRunSafeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "safe.php")
	src := `<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) { exit; }
query("SELECT " . $id);
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	rc := run([]string{path}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d (want 0 = safe), out %q", rc, out.String())
	}
	if !strings.Contains(out.String(), "findings=0") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []string{"quote", "comment", "tautology", "stacked", "any"} {
		var out, errb strings.Builder
		rc := run([]string{"-policy", pol, "-defect", "utopia/login"}, &out, &errb)
		if rc != 1 {
			t.Fatalf("policy %s: rc = %d", pol, rc)
		}
	}
	var out, errb strings.Builder
	if rc := run([]string{"-policy", "bogus", "-defect", "eve/edit"}, &out, &errb); rc != 2 {
		t.Fatalf("bad policy rc = %d", rc)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if rc := run(nil, &out, &errb); rc != 2 {
		t.Fatalf("no input rc = %d", rc)
	}
	if rc := run([]string{"-defect", "no/such"}, &out, &errb); rc != 2 {
		t.Fatalf("bad defect rc = %d", rc)
	}
	if rc := run([]string{"/nonexistent.php"}, &out, &errb); rc != 2 {
		t.Fatalf("missing file rc = %d", rc)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	rc := run([]string{"-json", "-defect", "utopia/login"}, &out, &errb)
	if rc != 1 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	var rep struct {
		Name        string `json:"name"`
		Blocks      int    `json:"blocks"`
		Constraints int    `json:"constraints"`
		Findings    []struct {
			Kind   string            `json:"kind"`
			Inputs map[string]string `json:"inputs"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Blocks != 295 || rep.Constraints != 16 || len(rep.Findings) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Findings[0].Kind != "sql" || !strings.Contains(rep.Findings[0].Inputs["POST:login_id"], "'") {
		t.Fatalf("finding = %+v", rep.Findings[0])
	}
}

func TestRunWholeApp(t *testing.T) {
	var out, errb strings.Builder
	rc := run([]string{"-app", "eve"}, &out, &errb)
	if rc != 1 {
		t.Fatalf("rc = %d, stderr %q", rc, errb.String())
	}
	// 8 files reported; exactly the edit.php defect found.
	if got := strings.Count(out.String(), "findings="); got != 8 {
		t.Fatalf("reported %d files, want 8", got)
	}
	if got := strings.Count(out.String(), "sql injection via"); got != 1 {
		t.Fatalf("findings = %d, want 1", got)
	}
	var out2, errb2 strings.Builder
	if rc := run([]string{"-app", "nope"}, &out2, &errb2); rc != 2 {
		t.Fatalf("unknown app rc = %d", rc)
	}
}
