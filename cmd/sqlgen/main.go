// Command sqlgen analyzes PHP-subset source files for SQL-injection and XSS
// vulnerabilities and generates exploiting HTTP inputs — the reproduction of
// the paper's prototype that extends Wassermann & Su-style defect reports
// with automatically generated testcases (§4).
//
// Usage:
//
//	sqlgen [flags] file.php...          analyze source files
//	sqlgen [flags] -defect warp/secure  analyze a generated corpus defect
//	sqlgen -list                        list the corpus defects
//
// Exit status is 0 when no vulnerability is found, 1 when findings are
// reported, 2 on errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dprle/internal/corpus"
	"dprle/internal/policy"
	"dprle/internal/symexec"
)

// jsonReport is the machine-readable output of -json mode.
type jsonReport struct {
	Name        string        `json:"name"`
	Blocks      int           `json:"blocks"`
	Paths       int           `json:"paths"`
	Constraints int           `json:"constraints"`
	Findings    []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	Line   int               `json:"line"`
	Kind   string            `json:"kind"`
	Inputs map[string]string `json:"inputs"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sqlgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		defect   = fs.String("defect", "", "analyze a corpus defect (app/name) instead of files")
		app      = fs.String("app", "", "analyze a whole corpus application tree (eve, utopia, warp)")
		list     = fs.Bool("list", false, "list the corpus defects and exit")
		polName  = fs.String("policy", "quote", "SQL policy: quote, comment, tautology, stacked, any")
		allPaths = fs.Bool("all-paths", false, "report every feasible path, not just the first per sink")
		maxPaths = fs.Int("max-paths", 0, "path enumeration cap (0 = default)")
		asJSON   = fs.Bool("json", false, "emit machine-readable JSON reports")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, d := range corpus.Defects() {
			fmt.Fprintf(stdout, "%s/%s\t|FG|=%d |C|=%d paper TS=%.3fs\n", d.App, d.Name, d.WantFG, d.WantC, d.PaperTS)
		}
		return 0
	}

	cfgc := symexec.DefaultConfig()
	cfgc.FirstPerSink = !*allPaths
	cfgc.MaxPaths = *maxPaths
	switch *polName {
	case "quote":
		cfgc.SQL = policy.SQLQuote()
	case "comment":
		cfgc.SQL = policy.SQLComment()
	case "tautology":
		cfgc.SQL = policy.SQLTautology()
	case "stacked":
		cfgc.SQL = policy.SQLStacked()
	case "any":
		cfgc.SQL = policy.Combined("sql-any",
			policy.SQLQuote(), policy.SQLComment(), policy.SQLTautology(), policy.SQLStacked())
	default:
		fmt.Fprintf(stderr, "sqlgen: unknown policy %q\n", *polName)
		return 2
	}

	type unit struct{ name, src string }
	var units []unit
	if *app != "" {
		found := false
		for _, a := range corpus.Apps() {
			if a.Name != *app {
				continue
			}
			found = true
			files, err := corpus.GenerateApp(a)
			if err != nil {
				fmt.Fprintf(stderr, "sqlgen: %v\n", err)
				return 2
			}
			for _, f := range files {
				units = append(units, unit{name: a.Name + "/" + f.Name + ".php", src: f.Source})
			}
		}
		if !found {
			fmt.Fprintf(stderr, "sqlgen: unknown app %q (eve, utopia, warp)\n", *app)
			return 2
		}
	}
	if *defect != "" {
		d, ok := corpus.DefectByName(*defect)
		if !ok {
			fmt.Fprintf(stderr, "sqlgen: unknown defect %q (try -list)\n", *defect)
			return 2
		}
		src, err := corpus.Source(d)
		if err != nil {
			fmt.Fprintf(stderr, "sqlgen: %v\n", err)
			return 2
		}
		units = append(units, unit{name: *defect, src: src})
	}
	for _, f := range fs.Args() {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(stderr, "sqlgen: %v\n", err)
			return 2
		}
		units = append(units, unit{name: f, src: string(data)})
	}
	if len(units) == 0 {
		fmt.Fprintln(stderr, "sqlgen: nothing to analyze (pass files or -defect)")
		return 2
	}

	vulnerable := false
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	for _, u := range units {
		findings, stats, err := symexec.AnalyzeSource(u.name, u.src, cfgc)
		if err != nil {
			fmt.Fprintf(stderr, "sqlgen: %s: %v\n", u.name, err)
			return 2
		}
		if len(findings) > 0 {
			vulnerable = true
		}
		if *asJSON {
			rep := jsonReport{
				Name: u.name, Blocks: stats.Blocks, Paths: stats.Paths,
				Constraints: stats.Constraints, Findings: []jsonFinding{},
			}
			for _, f := range findings {
				rep.Findings = append(rep.Findings, jsonFinding{
					Line: f.Line, Kind: f.Kind.String(), Inputs: f.Inputs,
				})
			}
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(stderr, "sqlgen: %v\n", err)
				return 2
			}
			continue
		}
		fmt.Fprintf(stdout, "%s: |FG|=%d paths=%d |C|=%d findings=%d\n",
			u.name, stats.Blocks, stats.Paths, stats.Constraints, len(findings))
		for _, f := range findings {
			fmt.Fprintf(stdout, "  %s\n", f.String())
		}
	}
	if vulnerable {
		return 1
	}
	return 0
}
