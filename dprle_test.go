package dprle

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem()
	sys.MustRequire(V("input"), "filter", MustMatchLang(`[\d]+$`))
	sys.MustRequire(Concat(sys.Lit("nid_"), V("input")), "unsafe", MustMatchLang(`'`))

	res, err := sys.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat() {
		t.Fatal("system should be satisfiable")
	}
	input := res.First().Get("input")
	if !input.Accepts("' OR 1=1 ; DROP news --9") {
		t.Fatal("exploit string missing from solution")
	}
	if input.Accepts("123") {
		t.Fatal("benign input wrongly included")
	}
	w, ok := input.Witness()
	if !ok || !input.Accepts(w) {
		t.Fatalf("witness %q invalid", w)
	}
	if !sys.Satisfies(res.First()) {
		t.Fatal("solution should satisfy")
	}
	if err := sys.CheckMaximal(res.First()); err != nil {
		t.Fatal(err)
	}
}

func TestLangAlgebra(t *testing.T) {
	a := MustRegexLang("[ab]+")
	b := MustRegexLang("[bc]+")
	if !a.Intersect(b).Equal(MustRegexLang("b+")) {
		t.Fatal("intersect wrong")
	}
	if !LitLang("x").Union(LitLang("y")).Accepts("y") {
		t.Fatal("union wrong")
	}
	if !LitLang("x").ConcatWith(LitLang("y")).Accepts("xy") {
		t.Fatal("concat wrong")
	}
	if LitLang("x").Complement().Accepts("x") {
		t.Fatal("complement wrong")
	}
	if !LitLang("ab").Star().Accepts("abab") {
		t.Fatal("star wrong")
	}
	if !LitLang("b").SubsetOf(a) || a.SubsetOf(LitLang("b")) {
		t.Fatal("subset wrong")
	}
	if !EmptyLang().IsEmpty() || AnyLang().IsEmpty() {
		t.Fatal("empty/any wrong")
	}
}

func TestZeroLangIsEmpty(t *testing.T) {
	var l Lang
	if !l.IsEmpty() || l.Accepts("") {
		t.Fatal("zero Lang should be ∅")
	}
	if got := l.String(); !strings.Contains(got, "empty") {
		t.Fatalf("String = %q", got)
	}
}

func TestLengthBetween(t *testing.T) {
	l := LengthBetween(2, 4)
	for _, w := range []string{"ab", "abc", "abcd"} {
		if !l.Accepts(w) {
			t.Errorf("should accept %q", w)
		}
	}
	for _, w := range []string{"", "a", "abcde"} {
		if l.Accepts(w) {
			t.Errorf("should reject %q", w)
		}
	}
	unbounded := LengthBetween(3, -1)
	if unbounded.Accepts("ab") || !unbounded.Accepts("abcdefgh") {
		t.Fatal("unbounded length wrong")
	}
}

func TestLengthRestrictionInSystem(t *testing.T) {
	// §3.1.2's extension: restrict a variable to strings of length 4.
	sys := NewSystem()
	sys.MustRequire(V("v"), "digits", MustMatchLang(`^[\d]+$`))
	sys.MustRequire(V("v"), "len4", LengthBetween(4, 4))
	res, err := sys.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := res.First().Get("v")
	if !v.Accepts("1234") || v.Accepts("123") || v.Accepts("12345") {
		t.Fatal("length restriction not applied")
	}
}

func TestOrExpression(t *testing.T) {
	sys := NewSystem()
	sys.MustRequire(Or(V("a"), V("b")), "c", MustRegexLang("x+"))
	res, err := sys.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"a", "b"} {
		if !res.First().Get(v).Equal(MustRegexLang("x+")) {
			t.Errorf("%s should be x+", v)
		}
	}
}

func TestDecide(t *testing.T) {
	sys := NewSystem()
	sys.MustRequire(V("v"), "a", MustRegexLang("a+"))
	sys.MustRequire(V("v"), "b", MustRegexLang("b+"))
	if _, ok, err := sys.Decide([]string{"v"}, Options{}); err != nil || ok {
		t.Fatalf("disjoint constraints must be undecidable-to-sat: ok=%v err=%v", ok, err)
	}

	sys2 := NewSystem()
	sys2.MustRequire(V("v"), "a", MustRegexLang("a+"))
	a, ok, err := sys2.Decide([]string{"v"}, Options{})
	if err != nil || !ok {
		t.Fatalf("Decide failed: %v/%v", ok, err)
	}
	if w, _ := a.Get("v").Witness(); w != "a" {
		t.Fatalf("witness = %q", w)
	}
}

func TestWitnesses(t *testing.T) {
	sys := NewSystem()
	sys.MustRequire(V("x"), "lit", LitLang("hello"))
	res, err := sys.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := res.First().Witnesses()
	if err != nil || ws["x"] != "hello" {
		t.Fatalf("witnesses = %v, err %v", ws, err)
	}
}

func TestNamedConstantConflict(t *testing.T) {
	sys := NewSystem()
	sys.MustNamed("k", LitLang("a"))
	if _, err := sys.Named("k", LitLang("b")); err == nil {
		t.Fatal("conflicting constant names must error")
	}
}

func TestRegexErrorsPropagate(t *testing.T) {
	if _, err := RegexLang("("); err == nil {
		t.Fatal("bad pattern must error")
	}
	if _, err := MatchLang("a^b"); err == nil {
		t.Fatal("interior anchor must error")
	}
}

func TestFirstPanicsOnUnsat(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("First must panic on unsat result")
		}
	}()
	(&Result{}).First()
}

func TestNewAssignmentAndCheckers(t *testing.T) {
	sys := NewSystem()
	sys.MustRequire(V("v"), "c", MustRegexLang("a*"))
	good := NewAssignment(map[string]Lang{"v": MustRegexLang("a*")})
	if !sys.Satisfies(good) {
		t.Fatal("a* satisfies v ⊆ a*")
	}
	if err := sys.CheckMaximal(good); err != nil {
		t.Fatal(err)
	}
	small := NewAssignment(map[string]Lang{"v": LitLang("a")})
	if err := sys.CheckMaximal(small); err == nil {
		t.Fatal("strict subset must fail maximality")
	}
	bad := NewAssignment(map[string]Lang{"v": LitLang("b")})
	if sys.Satisfies(bad) {
		t.Fatal("b does not satisfy v ⊆ a*")
	}
}

func TestEnumerate(t *testing.T) {
	l := MustRegexLang("a|bb")
	got := l.Enumerate(3, 10)
	if len(got) != 2 || got[0] != "a" || got[1] != "bb" {
		t.Fatalf("Enumerate = %v", got)
	}
}

func TestMinimizeAndStates(t *testing.T) {
	l := MustRegexLang("(a|a|a)b")
	min := l.Minimize()
	if !min.Equal(l) {
		t.Fatal("Minimize changed the language")
	}
	if min.States() > l.States() {
		t.Fatal("Minimize should not grow the machine")
	}
	if !strings.Contains(l.Dot("m"), "digraph") {
		t.Fatal("Dot output malformed")
	}
}

func TestSystemString(t *testing.T) {
	sys := NewSystem()
	sys.MustRequire(V("v"), "c", LitLang("x"))
	if !strings.Contains(sys.String(), "v ⊆ c") {
		t.Fatalf("String = %q", sys.String())
	}
	if len(sys.Vars()) != 1 || sys.Vars()[0] != "v" {
		t.Fatalf("Vars = %v", sys.Vars())
	}
}

func TestLangAnalysisHelpers(t *testing.T) {
	l := MustRegexLang("ab|cdef")
	if l.IsInfinite() {
		t.Fatal("finite language misreported")
	}
	if min, _ := l.MinLen(); min != 2 {
		t.Fatalf("MinLen = %d", min)
	}
	if max, inf, _ := l.MaxLen(); inf || max != 4 {
		t.Fatalf("MaxLen = %d/%v", max, inf)
	}
	counts := l.Count(4)
	if counts[2] != 1 || counts[4] != 1 || counts[3] != 0 {
		t.Fatalf("Count = %v", counts)
	}
	star := MustRegexLang("x*")
	if !star.IsInfinite() {
		t.Fatal("x* must be infinite")
	}
	w, ok := star.Sample(3)
	if !ok || !star.Accepts(w) {
		t.Fatalf("Sample = %q/%v", w, ok)
	}
}

func TestSolveForFacade(t *testing.T) {
	sys := NewSystem()
	sys.MustRequire(V("a"), "ca", MustRegexLang("x+"))
	sys.MustRequire(V("b"), "cb", MustRegexLang("y+"))
	res, err := sys.SolveFor([]string{"a"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.First()
	if !a.Get("a").Equal(MustRegexLang("x+")) {
		t.Fatal("a not solved")
	}
	if !a.Get("b").Equal(AnyLang()) {
		t.Fatal("b should remain Σ* under partial solving")
	}
}

func TestLangMarshalRoundTrip(t *testing.T) {
	l := MustMatchLang(`[\d]+$`)
	back, err := UnmarshalLang(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(l) {
		t.Fatal("round trip changed the language")
	}
	if _, err := UnmarshalLang("garbage"); err == nil {
		t.Fatal("bad input must error")
	}
}
