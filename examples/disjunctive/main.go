// Disjunctive solutions: the paper's §3.1.1 and Figure 9 examples.
//
// RMA instances can have several inherently disjunctive maximal solutions:
// assignments that each satisfy the system but cannot be merged. This
// example reproduces both worked examples from the paper and prints every
// disjunct.
//
// Run with: go run ./examples/disjunctive
package main

import (
	"fmt"
	"log"

	"dprle"
)

func main() {
	section311()
	figure9()
}

// section311 solves the paper's second §3.1.1 example:
//
//	v1 ⊆ x(yy)+   v2 ⊆ (yy)*z   v1·v2 ⊆ xyyz|xyyyyz
//
// whose two maximal solutions are
//
//	A1 = [v1 ↦ xyy,         v2 ↦ z|yyz]
//	A2 = [v1 ↦ x(yy|yyyy),  v2 ↦ z]
func section311() {
	fmt.Println("== §3.1.1: two disjunctive assignments ==")
	sys := dprle.NewSystem()
	sys.MustRequire(dprle.V("v1"), "c1", dprle.MustRegexLang("x(yy)+"))
	sys.MustRequire(dprle.V("v2"), "c2", dprle.MustRegexLang("(yy)*z"))
	sys.MustRequire(dprle.Concat(dprle.V("v1"), dprle.V("v2")), "c3",
		dprle.MustRegexLang("xyyz|xyyyyz"))

	res, err := sys.Solve(dprle.Options{})
	if err != nil {
		log.Fatal(err)
	}
	printAssignments(res, "v1", "v2")

	// The disjuncts are genuinely unmergeable: check A1's v1 with A2's v2.
	a1v1 := res.Assignments[0].Get("v1")
	a2v2 := res.Assignments[1].Get("v2")
	cross := a1v1.ConcatWith(a2v2)
	fmt.Printf("cross-combining disjuncts stays inside c3: %v (they overlap, but neither subsumes)\n\n",
		cross.SubsetOf(dprle.MustRegexLang("xyyz|xyyyyz")))
}

// figure9 solves the shared-variable CI-group of Figure 9:
//
//	va ⊆ o(pp)+   vb ⊆ p*(qq)+   vc ⊆ q*r
//	va·vb ⊆ op⁵q*   vb·vc ⊆ p*q⁴r
//
// vb participates in both concatenations, making them mutually dependent;
// the solution set contains every (va, vc) combination for which a
// compatible vb exists.
func figure9() {
	fmt.Println("== Figure 9: mutually dependent concatenations ==")
	sys := dprle.NewSystem()
	sys.MustRequire(dprle.V("va"), "cva", dprle.MustRegexLang("o(pp)+"))
	sys.MustRequire(dprle.V("vb"), "cvb", dprle.MustRegexLang("p*(qq)+"))
	sys.MustRequire(dprle.V("vc"), "cvc", dprle.MustRegexLang("q*r"))
	sys.MustRequire(dprle.Concat(dprle.V("va"), dprle.V("vb")), "c1",
		dprle.MustRegexLang("op{5}q*"))
	sys.MustRequire(dprle.Concat(dprle.V("vb"), dprle.V("vc")), "c2",
		dprle.MustRegexLang("p*q{4}r"))

	res, err := sys.Solve(dprle.Options{})
	if err != nil {
		log.Fatal(err)
	}
	printAssignments(res, "va", "vb", "vc")
}

func printAssignments(res *dprle.Result, vars ...string) {
	fmt.Printf("%d disjunctive assignment(s):\n", len(res.Assignments))
	for i, a := range res.Assignments {
		fmt.Printf("  A%d:", i+1)
		for _, v := range vars {
			members := a.Get(v).Enumerate(8, 3)
			fmt.Printf("  %s ∈ %q", v, members)
		}
		fmt.Println()
	}
}
