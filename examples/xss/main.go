// Cross-site scripting: the paper notes its decision procedure applies
// beyond SQL injection, "e.g., to cross-site scripting or XML generation"
// (§2). This example analyzes a guestbook-style page whose allowlist filter
// is too permissive and derives a stored-XSS payload for it.
//
// Run with: go run ./examples/xss
package main

import (
	"fmt"
	"log"

	"dprle"
	"dprle/webcheck"
)

const guestbook = `<?php
// A guestbook that tries to sanitize the message with an allowlist —
// but the allowlist admits angle brackets.
$msg = $_GET['message'];
if (!preg_match('/^[a-zA-Z0-9 <>\/=.!?]+$/', $msg)) {
    exit;
}
$author = $_GET['author'];
if (!preg_match('/^[a-zA-Z]{1,16}$/', $author)) {
    exit;
}
echo "<div class=entry><b>" . $author . "</b>: " . $msg . "</div>";
`

func main() {
	report, err := webcheck.AnalyzeSource("guestbook.php", guestbook)
	if err != nil {
		log.Fatal(err)
	}
	if !report.Vulnerable() {
		fmt.Println("no XSS found")
		return
	}
	for _, f := range report.Findings {
		fmt.Println(f)
	}

	// The same check, phrased directly as a constraint system: which
	// messages pass the filter AND make the page contain "<script"?
	sys := dprle.NewSystem()
	sys.MustRequire(dprle.V("message"), "filter",
		dprle.MustMatchLang(`^[a-zA-Z0-9 <>\/=.!?]+$`))
	sys.MustRequire(
		dprle.Concat(sys.Lit("<div class=entry><b>anon</b>: "), dprle.V("message"), sys.Lit("</div>")),
		"xss", dprle.MustMatchLang(`<script`))
	res, err := sys.Solve(dprle.Options{})
	if err != nil {
		log.Fatal(err)
	}
	payload, _ := res.First().Get("message").Witness()
	fmt.Printf("direct constraint query payload: %q\n", payload)

	// Tightening the filter to reject '<' proves the page safe.
	safe := dprle.NewSystem()
	safe.MustRequire(dprle.V("message"), "filter",
		dprle.MustMatchLang(`^[a-zA-Z0-9 =.!?]+$`))
	safe.MustRequire(
		dprle.Concat(safe.Lit("<div>"), dprle.V("message"), safe.Lit("</div>")),
		"xss", dprle.MustMatchLang(`<script`))
	res2, err := safe.Solve(dprle.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with '<' forbidden, exploitable: %v\n", res2.Sat())
}
