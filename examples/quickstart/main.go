// Quickstart: solve the paper's motivating constraint system with the dprle
// public API.
//
// The system models Figure 1 of the paper: user input passes the faulty
// filter preg_match('/[\d]+$/', …) — note the missing ^ anchor — and is then
// concatenated after "nid_" into a SQL query. Solving
//
//	input ⊆ L(filter)
//	"nid_" · input ⊆ L(unsafe)
//
// yields the full regular language of exploiting inputs, from which a
// concrete testcase is extracted.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dprle"
)

func main() {
	sys := dprle.NewSystem()

	// The faulty filter: matches when the input *ends* with digits, because
	// the ^ anchor is missing (paper §2).
	filter := dprle.MustMatchLang(`[\d]+$`)
	// The unsafe-query approximation: the query contains a single quote.
	unsafe := dprle.MustMatchLang(`'`)

	sys.MustRequire(dprle.V("input"), "filter", filter)
	sys.MustRequire(dprle.Concat(sys.Lit("nid_"), dprle.V("input")), "unsafe", unsafe)

	res, err := sys.Solve(dprle.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Sat() {
		fmt.Println("no assignments found — the code is not vulnerable")
		return
	}

	lang := res.First().Get("input")
	witness, _ := lang.Witness()
	fmt.Printf("system:\n%s\n", sys)
	fmt.Printf("disjunctive assignments: %d\n", len(res.Assignments))
	fmt.Printf("exploit language: %v\n", lang)
	fmt.Printf("shortest exploit: %q\n", witness)
	fmt.Printf("sample exploits:  %q\n", lang.Enumerate(4, 8))

	// The paper's example attack is in the language too.
	attack := "' OR 1=1 ; DROP news --9"
	fmt.Printf("paper's attack %q in language: %v\n", attack, lang.Accepts(attack))

	// A fixed filter (anchored on both sides) makes the system unsat.
	fixed := dprle.NewSystem()
	fixed.MustRequire(dprle.V("input"), "filter", dprle.MustMatchLang(`^[\d]+$`))
	fixed.MustRequire(dprle.Concat(fixed.Lit("nid_"), dprle.V("input")), "unsafe", unsafe)
	res2, err := fixed.Solve(dprle.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with the ^ anchor restored, satisfiable: %v\n", res2.Sat())
}
