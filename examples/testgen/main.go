// Testcase generation: the paper motivates the decision procedure with
// indicative testcases for bug reports ("defect reports often go unaddressed
// for longer if the report does not include an indicative testcase", §1).
// A solved RMA system describes the *entire* regular language of exploiting
// inputs, not just one string — so a bug report can ship a diverse batch of
// testcases, length statistics, and a machine-readable description of the
// input set.
//
// Run with: go run ./examples/testgen
package main

import (
	"fmt"
	"log"

	"dprle"
)

func main() {
	// The motivating system: inputs that pass the faulty filter and subvert
	// the query.
	sys := dprle.NewSystem()
	sys.MustRequire(dprle.V("input"), "filter", dprle.MustMatchLang(`[\d]+$`))
	sys.MustRequire(dprle.Concat(sys.Lit("nid_"), dprle.V("input")), "unsafe",
		dprle.MustMatchLang(`'`))
	res, err := sys.Solve(dprle.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Sat() {
		fmt.Println("not vulnerable")
		return
	}
	lang := res.First().Get("input")

	// 1. The canonical (shortest) testcase for the report headline.
	shortest, _ := lang.Witness()
	fmt.Printf("canonical testcase: %q\n", shortest)

	// 2. Language statistics for the report body.
	min, _ := lang.MinLen()
	_, infinite, _ := lang.MaxLen()
	fmt.Printf("input language: infinite=%v, shortest length=%d\n", infinite, min)
	counts := lang.Count(4)
	fmt.Printf("distinct exploits by length 0..4: %v\n", counts)

	// 3. A diverse batch of concrete testcases for a regression suite.
	fmt.Println("sampled regression inputs:")
	seen := map[string]bool{}
	for seed := uint64(1); len(seen) < 6 && seed < 100; seed++ {
		w, ok := lang.Sample(seed)
		if !ok || seen[w] || len(w) > 24 {
			continue
		}
		seen[w] = true
		fmt.Printf("  posted_newsid=%q\n", w)
	}

	// 4. Systematic short exploits, enumerated exhaustively.
	fmt.Printf("all exploits of length ≤ 2: %q\n", lang.Enumerate(2, 100))

	// Every emitted string is guaranteed to be a member of the exploit
	// language — verify once more for the skeptical reader.
	for w := range seen {
		if !lang.Accepts(w) {
			log.Fatalf("sample %q escaped the language", w)
		}
	}
	fmt.Println("all sampled inputs verified against the solved language")
}
