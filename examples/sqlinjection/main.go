// SQL injection testcase generation: the paper's end-to-end application
// (§2, §4). The program below is the Figure 1 fragment adapted from Utopia
// News Pro; webcheck parses it, symbolically executes the path to the
// query() sink, solves the resulting constraint system, and reports concrete
// HTTP parameters that exploit the defect.
//
// Run with: go run ./examples/sqlinjection
package main

import (
	"fmt"
	"log"
	"sort"

	"dprle/webcheck"
)

const utopiaFragment = `<?php
// Adapted from Utopia News Pro (paper Figure 1).
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) {
    unp_msgBox('Invalid article newsID.');
    exit;
}
$newsid = "nid_" . $newsid;
$idnews = query("SELECT * FROM news" .
                " WHERE newsid=$newsid");
`

func main() {
	report, err := webcheck.AnalyzeSource("news.php", utopiaFragment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("basic blocks (|FG|): %d\n", report.Blocks)
	fmt.Printf("paths to sinks:      %d\n", report.Paths)
	fmt.Printf("constraints (|C|):   %d\n", report.Constraints)
	if !report.Vulnerable() {
		fmt.Println("no vulnerabilities found")
		return
	}
	for _, f := range report.Findings {
		fmt.Println(f)
		keys := make([]string, 0, len(f.Inputs))
		for input := range f.Inputs {
			keys = append(keys, input)
		}
		sort.Strings(keys)
		for _, input := range keys {
			value := f.Inputs[input]
			fmt.Printf("  set %s to %q and the query is subverted\n", input, value)
		}
	}

	// Stricter attack languages produce more targeted exploits.
	for _, pol := range []string{"tautology", "stacked"} {
		rep, err := webcheck.AnalyzeSource("news.php", utopiaFragment, webcheck.WithSQLPolicy(pol))
		if err != nil {
			log.Fatal(err)
		}
		if rep.Vulnerable() {
			fmt.Printf("policy %-10s exploit: %q\n", pol,
				rep.Findings[0].Inputs["POST:posted_newsid"])
		}
	}

	// With the anchor restored, the analysis proves the absence of a
	// quote-injecting input (the paper: "our algorithm would indicate that
	// the language of vulnerable strings … is empty").
	fixed := `<?php
$newsid = $_POST['posted_newsid'];
if (!preg_match('/^[\d]+$/', $newsid)) { exit; }
$newsid = "nid_" . $newsid;
$idnews = query("SELECT * FROM news WHERE newsid=$newsid");
`
	rep, err := webcheck.AnalyzeSource("fixed.php", fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed filter vulnerable: %v\n", rep.Vulnerable())
}
