module dprle

go 1.22
