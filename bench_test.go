// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablations and substrate micro-benchmarks.
//
//	BenchmarkFigure4CI        — the concat_intersect pipeline of Fig. 3/4
//	BenchmarkSection311       — the disjunctive example of §3.1.1
//	BenchmarkFigure9GCI       — the shared-variable CI-group of Fig. 9/10
//	BenchmarkFig12/*          — the seventeen defects of Figure 12
//	                            (warp/secure takes minutes by design,
//	                            reproducing the published 577 s row; skipped
//	                            with -short)
//	BenchmarkFig11Generation  — corpus generation for the Figure 11 table
//	BenchmarkCIStateSweep/*   — §3.5: O(Q²) product growth, single CI
//	BenchmarkChainedCI/*      — §3.5: chained concat_intersect (O(Q⁵) case)
//	BenchmarkExtraSubset/*    — §3.5: doubly constrained concatenation
//	BenchmarkAblation/*       — solver options: maximalization, constant
//	                            canonicalization, intermediate minimization
//	BenchmarkNFA*             — substrate micro-benchmarks
//
// Regenerate the paper's tables directly with:
//
//	go run ./cmd/benchtab -table all
//	go run ./cmd/benchtab -table fig12 -full   # includes warp/secure
package dprle_test

import (
	"fmt"
	"testing"

	"dprle"
	"dprle/internal/core"
	"dprle/internal/corpus"
	"dprle/internal/experiments"
	"dprle/internal/nfa"
	"dprle/internal/regex"
)

// BenchmarkFigure4CI runs the paper's Fig. 3 algorithm on the Fig. 4 inputs:
// c1 = "nid_", c2 = Σ*[0-9], c3 = Σ*'Σ*.
func BenchmarkFigure4CI(b *testing.B) {
	b.ReportAllocs()
	c1 := nfa.Minimized(nfa.Literal("nid_"))
	c2 := nfa.Minimized(regex.MustMatchLanguage(`[\d]+$`))
	c3 := nfa.Minimized(regex.MustMatchLanguage(`'`))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sols := core.ConcatIntersect(c1, c2, c3)
		if len(sols) != 1 {
			b.Fatalf("solutions = %d", len(sols))
		}
	}
}

// BenchmarkSection311 solves the inherently disjunctive example of §3.1.1.
func BenchmarkSection311(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := dprle.NewSystem()
		sys.MustRequire(dprle.V("v1"), "c1", dprle.MustRegexLang("x(yy)+"))
		sys.MustRequire(dprle.V("v2"), "c2", dprle.MustRegexLang("(yy)*z"))
		sys.MustRequire(dprle.Concat(dprle.V("v1"), dprle.V("v2")), "c3",
			dprle.MustRegexLang("xyyz|xyyyyz"))
		res, err := sys.Solve(dprle.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Assignments) != 2 {
			b.Fatalf("assignments = %d", len(res.Assignments))
		}
	}
}

// BenchmarkFigure9GCI solves the mutually dependent concatenations of
// Fig. 9/10.
func BenchmarkFigure9GCI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := dprle.NewSystem()
		sys.MustRequire(dprle.V("va"), "cva", dprle.MustRegexLang("o(pp)+"))
		sys.MustRequire(dprle.V("vb"), "cvb", dprle.MustRegexLang("p*(qq)+"))
		sys.MustRequire(dprle.V("vc"), "cvc", dprle.MustRegexLang("q*r"))
		sys.MustRequire(dprle.Concat(dprle.V("va"), dprle.V("vb")), "c1",
			dprle.MustRegexLang("op{5}q*"))
		sys.MustRequire(dprle.Concat(dprle.V("vb"), dprle.V("vc")), "c2",
			dprle.MustRegexLang("p*q{4}r"))
		res, err := sys.Solve(dprle.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Assignments) != 4 {
			b.Fatalf("assignments = %d", len(res.Assignments))
		}
	}
}

// BenchmarkFig12 measures every Figure 12 defect end to end (parse →
// symbolic execution → constraint solving → exploit extraction), reporting
// the measured |FG|, |C|, and the solve time that corresponds to the
// published TS column.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	for _, d := range corpus.Defects() {
		d := d
		b.Run(d.App+"/"+d.Name, func(b *testing.B) {
			b.ReportAllocs()
			if d.Big && testing.Short() {
				b.Skip("warp/secure takes minutes by design (paper: 577 s); run without -short")
			}
			var lastRow experiments.Fig12Row
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunDefect(d, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if row.Findings != 1 {
					b.Fatalf("findings = %d", row.Findings)
				}
				lastRow = row
			}
			b.ReportMetric(float64(lastRow.FG), "FG")
			b.ReportMetric(float64(lastRow.C), "C")
			b.ReportMetric(d.PaperTS, "paperTS(s)")
		})
	}
}

// BenchmarkFig11Generation measures generating the three application trees
// of the data-set table.
func BenchmarkFig11Generation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("rows")
		}
	}
}

// sweepSizes are the Q values of the §3.5 sweeps.
var sweepSizes = []int{4, 8, 16, 32, 64}

// BenchmarkCIStateSweep measures a single concat_intersect as input machine
// size grows; the product machine is O(Q²) and solutions O(Q).
func BenchmarkCIStateSweep(b *testing.B) {
	b.ReportAllocs()
	for _, q := range sweepSizes {
		q := q
		b.Run(fmt.Sprintf("Q=%d", q), func(b *testing.B) {
			b.ReportAllocs()
			var p experiments.ComplexityPoint
			for i := 0; i < b.N; i++ {
				p = experiments.CISweep(q)
			}
			b.ReportMetric(float64(p.M5States), "M5states")
			b.ReportMetric(float64(p.Solutions), "solutions")
		})
	}
}

// chainedSweepSizes bounds the exhaustively enumerating sweeps (the O(Q⁵)
// cases) to modest machine sizes.
var chainedSweepSizes = []int{4, 8, 12, 16}

// BenchmarkChainedCI measures the chained system of §3.5 (two inductive
// concat_intersect applications).
func BenchmarkChainedCI(b *testing.B) {
	b.ReportAllocs()
	for _, q := range chainedSweepSizes {
		q := q
		b.Run(fmt.Sprintf("Q=%d", q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.ChainedSweep(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtraSubset measures the doubly constrained concatenation of
// §3.5.
func BenchmarkExtraSubset(b *testing.B) {
	b.ReportAllocs()
	for _, q := range chainedSweepSizes {
		q := q
		b.Run(fmt.Sprintf("Q=%d", q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.ExtraSubsetSweep(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation toggles the solver's design choices on a mid-size
// Figure 12 defect (utopia/styles: |C| = 156): the final maximalization
// fixpoint, the up-front canonicalization of constants (off = the paper
// prototype's verbatim tracking), and intermediate-machine minimization
// (the improvement the paper speculates about for the secure case).
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	d, ok := corpus.DefectByName("utopia/styles")
	if !ok {
		b.Fatal("defect missing")
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.Options{}},
		{"no-maximalize", core.Options{NoMaximalize: true}},
		{"raw-constants", core.Options{RawConstants: true}},
		{"minimize-intermediates", core.Options{Minimize: true}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunDefect(d, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				if row.Findings != 1 {
					b.Fatal("defect not found")
				}
			}
		})
	}
}

// Substrate micro-benchmarks.

func benchMachines(q int) (*nfa.NFA, *nfa.NFA) {
	a := regex.MustCompile(fmt.Sprintf("(ab|cd){0,%d}", q))
	c := regex.MustCompile(fmt.Sprintf("[a-d]{0,%d}", 2*q))
	return a, c
}

func BenchmarkNFAIntersect(b *testing.B) {
	b.ReportAllocs()
	a, c := benchMachines(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nfa.Intersect(a, c)
	}
}

func BenchmarkNFADeterminize(b *testing.B) {
	b.ReportAllocs()
	a, _ := benchMachines(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nfa.Determinize(a)
	}
}

func BenchmarkNFAMinimize(b *testing.B) {
	b.ReportAllocs()
	a, _ := benchMachines(32)
	d := nfa.Determinize(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Minimize()
	}
}

func BenchmarkNFAComplement(b *testing.B) {
	b.ReportAllocs()
	a, _ := benchMachines(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nfa.Complement(a)
	}
}

func BenchmarkNFASubset(b *testing.B) {
	b.ReportAllocs()
	a, c := benchMachines(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !nfa.Subset(a, c) {
			b.Fatal("subset should hold")
		}
	}
}

func BenchmarkRegexCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		regex.MustCompile(`^(GET|POST)[ ]+[\w\/.?=&%-]+[ ]+HTTP\/1\.[01]$`)
	}
}

func BenchmarkMatchLanguage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		regex.MustMatchLanguage(`[\d]+$`)
	}
}

// BenchmarkMaximalize isolates the quotient-based maximality fixpoint on
// the motivating system (the stage the solver adds beyond the paper's
// structural construction).
func BenchmarkMaximalize(b *testing.B) {
	b.ReportAllocs()
	mk := func() (*core.System, core.Assignment) {
		s := core.NewSystem()
		c1 := s.MustConst("c1", regex.MustMatchLanguage(`[\d]+$`))
		c2 := s.MustConst("c2", nfa.Literal("nid_"))
		c3 := s.MustConst("c3", regex.MustMatchLanguage(`'`))
		s.MustAdd(core.Var{Name: "v1"}, c1)
		s.MustAdd(core.Cat{Left: c2, Right: core.Var{Name: "v1"}}, c3)
		res, err := core.Solve(s, core.Options{NoMaximalize: true})
		if err != nil || !res.Sat() {
			b.Fatal("setup failed")
		}
		return s, res.Assignments[0]
	}
	s, raw := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, err := core.Solve(s, core.Options{})
		if err != nil || !full.Sat() {
			b.Fatal("solve failed")
		}
		_ = raw
	}
}

// BenchmarkQuotients measures the MaxMiddle construction the maximality
// checker and fixpoint are built on.
func BenchmarkQuotients(b *testing.B) {
	b.ReportAllocs()
	pre := nfa.Literal("SELECT * FROM news WHERE newsid=nid_")
	post := nfa.Epsilon()
	c := regex.MustMatchLanguage(`'`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := nfa.MaxMiddle(pre, post, c)
		if m.IsEmpty() {
			b.Fatal("unexpected empty quotient")
		}
	}
}

// BenchmarkSolveForPartial compares partial solving against a full solve on
// a system with one relevant and many irrelevant constraint groups.
func BenchmarkSolveForPartial(b *testing.B) {
	b.ReportAllocs()
	mk := func() *dprle.System {
		sys := dprle.NewSystem()
		sys.MustRequire(dprle.V("target"), "tfilter", dprle.MustMatchLang(`[\d]+$`))
		sys.MustRequire(dprle.Concat(sys.Lit("nid_"), dprle.V("target")), "tunsafe",
			dprle.MustMatchLang(`'`))
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("other%d", i)
			sys.MustRequire(dprle.V(name+"a"), "c1"+name, dprle.MustRegexLang("x(yy)+"))
			sys.MustRequire(dprle.V(name+"b"), "c2"+name, dprle.MustRegexLang("(yy)*z"))
			sys.MustRequire(dprle.Concat(dprle.V(name+"a"), dprle.V(name+"b")), "c3"+name,
				dprle.MustRegexLang("xyyz|xyyyyz"))
		}
		return sys
	}
	b.Run("solve-for-target", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mk().SolveFor([]string{"target"}, dprle.Options{})
			if err != nil || !res.Sat() {
				b.Fatal("failed")
			}
		}
	})
	b.Run("full-solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := mk().Solve(dprle.Options{})
			if err != nil || !res.Sat() {
				b.Fatal("failed")
			}
		}
	})
}
